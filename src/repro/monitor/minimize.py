"""State minimisation for monitors (Moore/Mealy partition refinement).

Used by the analysis layer (canonical forms for language-equivalence
checking), by the optimization pipeline (:mod:`repro.optimize`) that
shrinks automata before they are lowered to compiled dispatch tables,
and by the baselines benchmark comparing monitor sizes.

Action-free detectors minimise as classic Moore machines.  Monitors
carrying scoreboard actions are Mealy-style transducers whose output
(the ``Add_evt``/``Del_evt`` sequence) is part of their behaviour;
they are minimised by including the *action signature* — the move's
action tuple, resolved per scoreboard-check assignment — in the
partition-refinement signature, so two states merge only when they
emit identical actions and reach equivalent successors under **every**
input valuation *and* every truth assignment of their ``Chk_evt``
guards.  Quantifying over all check assignments abstracts the dynamic
scoreboard soundly: merged states are indistinguishable no matter
which events the scoreboard happens to hold.

The valuation enumeration is routed through
:class:`~repro.logic.codec.AlphabetCodec` masks, so this layer shares
the codec's ``2^MAX_CODEC_SYMBOLS`` tractability cap instead of
silently attempting an astronomically wide enumeration.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.errors import ExprError, MonitorError
from repro.logic.codec import MAX_CODEC_SYMBOLS, AlphabetCodec
from repro.logic.expr import ScoreboardCheck, scoreboard_checks_of, substitute_checks
from repro.logic.qm import minimize_expr
from repro.logic.valuation import Valuation
from repro.monitor.automaton import Monitor, Transition

__all__ = ["minimize_monitor", "transition_function"]

#: One resolved move: ``(actions, target)`` for a fixed (mask, checks).
_Move = Tuple[tuple, int]


def _codec_for(monitor: Monitor) -> AlphabetCodec:
    """The codec enumerating the monitor's valuations, cap enforced.

    The dense ``2^|Sigma|`` enumeration below shares
    :data:`~repro.logic.codec.MAX_CODEC_SYMBOLS` with the compiled
    runtime — one limit for every layer that materialises the
    valuation space.
    """
    if len(monitor.alphabet) > MAX_CODEC_SYMBOLS:
        raise MonitorError(
            f"monitor {monitor.name!r}: alphabet of "
            f"{len(monitor.alphabet)} symbols exceeds the "
            f"2^{MAX_CODEC_SYMBOLS} valuation-enumeration cap "
            f"(shared with AlphabetCodec) — prune the alphabet or "
            f"split the chart"
        )
    return AlphabetCodec(monitor.alphabet)


def transition_function(
    monitor: Monitor,
) -> Dict[Tuple[int, FrozenSet[str]], int]:
    """Explicit ``(state, valuation) -> state`` table over the alphabet.

    Requires an action-free monitor whose guards reference only input
    symbols (no ``Chk_evt``); raises on anything else.
    """
    if monitor.has_actions():
        raise MonitorError(
            f"monitor {monitor.name!r} carries scoreboard actions; its "
            "transition function is scoreboard-dependent"
        )
    codec = _codec_for(monitor)
    table: Dict[Tuple[int, FrozenSet[str]], int] = {}
    for state in monitor.states:
        outgoing = monitor.transitions_from(state)
        for mask in codec.all_masks():
            valuation = codec.decode(mask)
            enabled = [
                t for t in outgoing
                if _guard_holds(t, valuation)
            ]
            if len({t.target for t in enabled}) != 1:
                raise MonitorError(
                    f"monitor {monitor.name!r}: state {state} has "
                    f"{len(enabled)} enabled transitions on {valuation!r}"
                )
            table[(state, valuation.true)] = enabled[0].target
    return table


def _guard_holds(transition: Transition, valuation: Valuation) -> bool:
    try:
        return transition.guard.evaluate(valuation)
    except ExprError as error:  # Chk_evt evaluated without a scoreboard
        raise MonitorError(
            f"guard {transition.guard!r} is scoreboard-dependent: {error}"
        ) from error


class _StateBehaviour:
    """One state's move function, resolved per (mask, check assignment).

    ``checks`` is the sorted tuple of ``Chk_evt`` events the state's
    outgoing guards mention; ``moves[mask][a]`` is the unique
    ``(actions, target)`` fired by valuation ``mask`` when assignment
    ``a`` (bit ``i`` = truth of ``checks[i]``) fixes every check.
    """

    __slots__ = ("checks", "moves")

    def __init__(self, checks: Tuple[str, ...],
                 moves: List[List[_Move]]):
        self.checks = checks
        self.moves = moves


def _state_behaviour(
    monitor: Monitor, codec: AlphabetCodec, state: int
) -> _StateBehaviour:
    """Resolve ``state``'s moves for every valuation and check truth."""
    outgoing = monitor.transitions_from(state)
    check_set: set = set()
    for transition in outgoing:
        check_set |= scoreboard_checks_of(transition.guard)
    checks = tuple(sorted(check_set))
    if len(checks) > MAX_CODEC_SYMBOLS:
        raise MonitorError(
            f"monitor {monitor.name!r}: state {state} guards mention "
            f"{len(checks)} distinct Chk_evt events, exceeding the "
            f"2^{MAX_CODEC_SYMBOLS} assignment-enumeration cap"
        )
    n_assignments = 1 << len(checks)
    # Truth bitmaps per (assignment, transition): with checks fixed the
    # guard is a pure input function, tabulated in one codec pass.
    enabled: List[List[Tuple[int, Transition]]] = []
    for assignment in range(n_assignments):
        values = {
            check: bool(assignment >> index & 1)
            for index, check in enumerate(checks)
        }
        entries: List[Tuple[int, Transition]] = []
        for transition in outgoing:
            fixed = substitute_checks(transition.guard, values).simplify()
            bitmap = codec.truth_table(fixed)
            if bitmap:
                entries.append((bitmap, transition))
        enabled.append(entries)
    moves: List[List[_Move]] = []
    for mask in codec.all_masks():
        bit = 1 << mask
        per_assignment: List[_Move] = []
        for assignment in range(n_assignments):
            fired = {
                (t.actions, t.target)
                for bitmap, t in enabled[assignment]
                if bitmap & bit
            }
            if len(fired) != 1:
                kind = "no move" if not fired else (
                    f"{len(fired)} conflicting moves"
                )
                held = [c for i, c in enumerate(checks)
                        if assignment >> i & 1]
                raise MonitorError(
                    f"monitor {monitor.name!r}: state {state} has {kind} "
                    f"on {codec.decode(mask)!r} with scoreboard checks "
                    f"{held or '{}'} assumed true"
                )
            per_assignment.append(next(iter(fired)))
        moves.append(per_assignment)
    return _StateBehaviour(checks, moves)


def _dependent_checks(outs: Sequence, n_checks: int) -> List[int]:
    """Indices of checks the outcome actually depends on.

    ``outs`` maps every assignment (bit ``i`` = truth of check ``i``)
    to its resolved output; a check whose flip never changes the
    output is a don't-care and is eliminated from signatures and
    rebuilt guards alike.
    """
    return [
        index for index in range(n_checks)
        if any(outs[a] != outs[a ^ (1 << index)]
               for a in range(len(outs)))
    ]


def _expand_assignment(sub: int, kept: Sequence[int]) -> int:
    """Map an assignment over the kept checks back to the full space
    (don't-care bits zero)."""
    assignment = 0
    for j, index in enumerate(kept):
        if sub >> j & 1:
            assignment |= 1 << index
    return assignment


def _mask_signature(
    checks: Tuple[str, ...],
    per_assignment: Sequence[_Move],
    block_of: Dict[int, int],
) -> tuple:
    """Canonical decision function of one ``(state, mask)`` cell.

    Maps targets to their current partition blocks, then eliminates
    checks the outcome never depends on, so two states whose guards
    *mention* different checks but *behave* identically get equal
    signatures.
    """
    outs = [
        (actions, block_of[target]) for actions, target in per_assignment
    ]
    kept = _dependent_checks(outs, len(checks))
    projected = tuple(
        outs[_expand_assignment(sub, kept)] for sub in range(1 << len(kept))
    )
    return (tuple(checks[i] for i in kept), projected)


def _check_guard(
    assignments: Sequence[int], checks: Tuple[str, ...], kept: List[int]
):
    """Minimal ``Chk_evt`` expression selecting exactly ``assignments``.

    ``assignments`` index the kept-check truth space (bit ``j`` =
    ``checks[kept[j]]``); the result is their Quine–McCluskey minimum
    sum-of-products over ``ScoreboardCheck`` atoms.
    """
    atoms = [ScoreboardCheck(checks[i]) for i in kept]
    width = len(atoms)
    minterms = []
    for assignment in assignments:
        index = 0
        for j in range(width):
            if assignment >> j & 1:
                index |= 1 << (width - 1 - j)
        minterms.append(index)
    return minimize_expr(minterms, atoms)


def minimize_monitor(monitor: Monitor) -> Monitor:
    """Behaviour-preserving state minimisation (final state = accepting).

    Returns a monitor over the same alphabet with the minimum number of
    states distinguishing acceptance *and* action behaviour:
    action-free detectors reduce exactly as Moore machines; monitors
    with scoreboard actions merge states only when every input
    valuation, under every ``Chk_evt`` truth assignment, yields the
    same action tuple and an equivalent successor.  Unreachable states
    are dropped.  Transitions in the result are labelled with minterm
    guards (one per valuation class, conjoined with a minimised check
    expression where the move is scoreboard-dependent), ready for
    :func:`~repro.synthesis.symbolic.symbolic_monitor` compression.
    """
    codec = _codec_for(monitor)
    masks = list(codec.all_masks())

    # Reachability over (state) with behaviour resolved lazily — an
    # unreachable ill-formed state cannot poison the minimisation.
    behaviour: Dict[int, _StateBehaviour] = {}

    def behaviour_of(state: int) -> _StateBehaviour:
        resolved = behaviour.get(state)
        if resolved is None:
            resolved = _state_behaviour(monitor, codec, state)
            behaviour[state] = resolved
        return resolved

    reachable = {monitor.initial}
    frontier = [monitor.initial]
    while frontier:
        state = frontier.pop()
        for per_assignment in behaviour_of(state).moves:
            for _, target in per_assignment:
                if target not in reachable:
                    reachable.add(target)
                    frontier.append(target)

    # The empty-language check runs *before* partition refinement: a
    # final state no run can enter means the detected language is
    # empty, and no amount of refinement changes that.  ``initial ==
    # final`` (an empty chart) is trivially reachable and proceeds.
    if monitor.final not in reachable:
        raise MonitorError(
            f"monitor {monitor.name!r}: final state unreachable — the "
            "detected language is empty and has no DFA in monitor form"
        )

    # Partition refinement, accepting block split out first.
    accepting = frozenset({monitor.final})
    partition: List[FrozenSet[int]] = [
        block
        for block in (frozenset(reachable) - accepting, accepting)
        if block
    ]
    while True:
        block_of: Dict[int, int] = {}
        for index, block in enumerate(partition):
            for state in block:
                block_of[state] = index
        refined: List[FrozenSet[int]] = []
        for block in partition:
            groups: Dict[tuple, List[int]] = {}
            for state in block:
                resolved = behaviour_of(state)
                signature = tuple(
                    _mask_signature(
                        resolved.checks, resolved.moves[mask], block_of
                    )
                    for mask in masks
                )
                groups.setdefault(signature, []).append(state)
            refined.extend(frozenset(g) for g in groups.values())
        if len(refined) == len(partition):
            break
        partition = refined

    block_of = {}
    for index, block in enumerate(partition):
        for state in block:
            block_of[state] = index
    # Renumber with the initial block first for readability.
    order = sorted(range(len(partition)),
                   key=lambda i: (i != block_of[monitor.initial], i))
    renumber = {old: new for new, old in enumerate(order)}

    from repro.synthesis.tr import minterm_expr
    from repro.logic.expr import And

    alphabet = codec.symbols
    transitions: List[Transition] = []
    for index, block in enumerate(partition):
        representative = min(block)
        resolved = behaviour_of(representative)
        checks = resolved.checks
        for mask in masks:
            per_assignment = resolved.moves[mask]
            outs = [
                (actions, block_of[target])
                for actions, target in per_assignment
            ]
            kept = _dependent_checks(outs, len(checks))
            groups: Dict[_Move, List[int]] = {}
            for sub in range(1 << len(kept)):
                groups.setdefault(
                    outs[_expand_assignment(sub, kept)], []
                ).append(sub)
            minterm = minterm_expr(
                codec.decode(mask).true, alphabet, monitor.props
            )
            for (actions, target_block), subs in sorted(
                groups.items(), key=lambda item: repr(item[0])
            ):
                if len(groups) == 1:
                    guard = minterm
                else:
                    guard = And(
                        (minterm, _check_guard(subs, checks, kept))
                    ).simplify()
                transitions.append(
                    Transition(renumber[index], guard, actions,
                               renumber[target_block])
                )
    return Monitor(
        f"{monitor.name}:min",
        n_states=len(partition),
        initial=renumber[block_of[monitor.initial]],
        final=renumber[block_of[monitor.final]],
        transitions=transitions,
        alphabet=monitor.alphabet,
        props=monitor.props,
    )
