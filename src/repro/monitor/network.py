"""Multi-clock monitor networks: local monitors + one shared scoreboard.

The network steps each local monitor on its own clock's ticks of a
:class:`~repro.semantics.run.GlobalRun`.  Clock ticks landing at the
same absolute instant are handled *two-phase*, following the
synchronous paradigm: every coincident monitor first selects its
transition against the scoreboard as it stood at the start of the
instant, then all actions commit.  A cause recorded at instant ``t``
is therefore visible to ``Chk_evt`` only strictly after ``t`` — the
strict cross-domain precedence the semantics demands.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cesc.ast import Clock
from repro.errors import MonitorError
from repro.monitor.automaton import Monitor
from repro.monitor.engine import MonitorEngine
from repro.monitor.scoreboard import Scoreboard
from repro.semantics.run import GlobalRun

__all__ = ["LocalMonitor", "MonitorNetwork", "NetworkResult"]


class LocalMonitor:
    """A synthesized local monitor bound to its clock domain."""

    __slots__ = ("component", "clock", "monitor")

    def __init__(self, component: str, clock: Clock, monitor: Monitor):
        self.component = component
        self.clock = clock
        self.monitor = monitor

    def __repr__(self):
        return (
            f"LocalMonitor({self.component!r}, clock={self.clock.name}, "
            f"monitor={self.monitor.name!r})"
        )


class NetworkResult:
    """Per-domain detections and the network-level verdict."""

    def __init__(self, detections: Dict[str, List[Fraction]],
                 completed_at: Optional[Fraction]):
        #: component name -> absolute times of local scenario detections.
        self.detections = detections
        #: earliest instant by which every component had detected, if any.
        self.completed_at = completed_at

    @property
    def accepted(self) -> bool:
        """Did every clock domain detect its local scenario?"""
        return self.completed_at is not None

    def __repr__(self):
        return (
            f"NetworkResult(accepted={self.accepted}, "
            f"completed_at={self.completed_at}, "
            f"detections={{{', '.join(f'{k}: {len(v)}' for k, v in self.detections.items())}}})"
        )


class MonitorNetwork:
    """The set of communicating local monitors for one async chart.

    ``optimize=True`` lowers each local monitor through the
    optimization pipeline (minimise + prune + compact) when the
    compiled backend is selected — behaviour, including the two-phase
    scoreboard contract, is unchanged.
    """

    def __init__(self, name: str, locals_: Sequence[LocalMonitor],
                 optimize: bool = False):
        if not locals_:
            raise MonitorError(f"monitor network {name!r} has no members")
        clock_names = [lm.clock.name for lm in locals_]
        duplicates = {c for c in clock_names if clock_names.count(c) > 1}
        if duplicates:
            raise MonitorError(
                f"multiple local monitors share clock(s) {sorted(duplicates)}"
            )
        self.name = name
        self.locals = list(locals_)
        self.optimize = bool(optimize)
        self._compiled_cache: Dict[str, object] = {}

    def _compiled_local(self, local: LocalMonitor):
        """Memoized compiled form of one local monitor."""
        compiled = self._compiled_cache.get(local.clock.name)
        if compiled is None:
            if self.optimize:
                from repro.optimize import optimize_monitor

                compiled = optimize_monitor(local.monitor).compiled
            else:
                from repro.runtime.compiled import compile_monitor

                compiled = compile_monitor(local.monitor)
            self._compiled_cache[local.clock.name] = compiled
        return compiled

    def local_for(self, component: str) -> LocalMonitor:
        for local in self.locals:
            if local.component == component:
                return local
        raise MonitorError(f"no local monitor for component {component!r}")

    def total_states(self) -> int:
        return sum(lm.monitor.n_states for lm in self.locals)

    def total_transitions(self) -> int:
        return sum(lm.monitor.transition_count() for lm in self.locals)

    def run(self, global_run: GlobalRun,
            scoreboard: Optional[Scoreboard] = None,
            engine: str = "interpreted") -> NetworkResult:
        """Execute the network over a global run.

        Each local monitor consumes the valuations of its own clock's
        ticks; simultaneous ticks commit their scoreboard actions
        two-phase (selection against the pre-instant scoreboard).

        ``engine`` selects the stepping backend for every local
        monitor from the registry — any backend honouring the
        two-phase contract (``"interpreted"``: guard-tree walking, the
        reference semantics; ``"compiled"``: dense table dispatch via
        :class:`~repro.runtime.compiled.CompiledEngine`; ``"auto"``
        resolves to compiled).  Results are identical.
        """
        from repro.runtime.engines import resolve_step_backend

        backend = resolve_step_backend(engine, "two_phase",
                                       error_cls=MonitorError)
        shared = scoreboard if scoreboard is not None else Scoreboard()
        engines = {
            lm.clock.name: backend.make_engine(
                self._compiled_local(lm) if backend.wants_compiled
                else lm.monitor,
                scoreboard=shared,
            )
            for lm in self.locals
        }
        component_of = {lm.clock.name: lm.component for lm in self.locals}
        detections: Dict[str, List[Fraction]] = {
            lm.component: [] for lm in self.locals
        }
        completed_at: Optional[Fraction] = None

        for tick in global_run:
            # Phase 1: each coincident monitor picks its transition
            # against the scoreboard as of the start of the instant.
            chosen: List[Tuple[str, MonitorEngine, object]] = []
            for clock_name in sorted(tick.clocks):
                engine = engines.get(clock_name)
                if engine is None:
                    continue
                valuation = tick.valuations[clock_name]
                transition = engine.enabled_transition(valuation)
                chosen.append((clock_name, engine, transition))
            # Phase 2: commit moves and actions.
            for clock_name, engine, transition in chosen:
                engine.commit(transition)
                if transition.target == engine.monitor.final:
                    detections[component_of[clock_name]].append(tick.time)
            if completed_at is None and all(
                detections[lm.component] for lm in self.locals
            ):
                completed_at = tick.time
        return NetworkResult(detections, completed_at)

    def __repr__(self):
        return f"MonitorNetwork({self.name!r}, locals={len(self.locals)})"
