"""Stepping monitors over clocked traces.

"Following the synchronous model of systems, the transitions in a
monitor are instantaneous and a single clock tick separates two
successive transitions."  The engine reads one valuation per tick,
fires the unique enabled transition, applies its scoreboard actions,
and records a *detection* each time the final state is entered — a
completed occurrence of the specified scenario.  The automaton keeps
running after a detection (the paper's transition function is defined
on the final state too), so overlapping/pipelined occurrences are
caught, exactly as in Figure 7.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import MonitorError
from repro.logic.valuation import Valuation
from repro.monitor.automaton import Monitor, Transition
from repro.monitor.scoreboard import Scoreboard
from repro.semantics.run import Trace

__all__ = ["EngineBase", "MonitorEngine", "MonitorResult", "run_monitor"]


class MonitorResult:
    """Outcome of running a monitor over a finite trace."""

    __slots__ = ("monitor_name", "states", "detections", "ticks",
                 "transitions")

    def __init__(self, monitor_name: str, states: List[int],
                 detections: List[int], ticks: int,
                 transitions: Optional[Tuple[Transition, ...]] = None):
        self.monitor_name = monitor_name
        #: state sequence, ``states[0]`` initial, one entry per tick after.
        self.states = states
        #: tick indices (0-based) at which the final state was entered.
        self.detections = detections
        self.ticks = ticks
        #: transitions taken, in tick order — present when the run was
        #: executed with history/transition recording (coverage folding
        #: reads these), ``None`` otherwise.
        self.transitions = transitions

    @property
    def accepted(self) -> bool:
        """Did the scenario occur at least once?"""
        return bool(self.detections)

    @property
    def first_detection(self) -> Optional[int]:
        return self.detections[0] if self.detections else None

    def __repr__(self):
        return (
            f"MonitorResult({self.monitor_name!r}, ticks={self.ticks}, "
            f"detections={self.detections})"
        )


class EngineBase:
    """Shared stepping state machine for both monitor backends.

    Holds the configuration (state, tick, detections, transition log,
    optionally-shared scoreboard) and the ``commit``/``feed``/
    ``result``/``reset`` half of the engine contract.  Subclasses
    provide ``enabled_transition`` — the interpreted engine by walking
    guard trees, the compiled engine by table dispatch — and may
    override ``step`` with a fused fast path.  ``automaton`` is any
    object exposing ``name``/``initial``/``final``.

    ``record_history=False`` turns off the per-tick state history and
    transition log, giving O(1) memory per tick regardless of trace
    length — the streaming pipeline runs engines this way and drains
    detections incrementally with :meth:`drain_detections`.
    """

    def __init__(self, automaton, scoreboard: Optional[Scoreboard] = None,
                 record_history: bool = True):
        self._automaton = automaton
        self._owns_scoreboard = scoreboard is None
        self._scoreboard = scoreboard if scoreboard is not None else Scoreboard()
        self._state = automaton.initial
        self._tick = 0
        self._record_history = record_history
        self._states: List[int] = [automaton.initial]
        self._detections: List[int] = []
        self._transition_log: List[Transition] = []

    # -- observers -------------------------------------------------------
    @property
    def state(self) -> int:
        return self._state

    @property
    def scoreboard(self) -> Scoreboard:
        return self._scoreboard

    @property
    def detections(self) -> List[int]:
        return list(self._detections)

    @property
    def tick(self) -> int:
        return self._tick

    @property
    def transition_log(self) -> List[Transition]:
        """Transitions taken so far, in order (for coverage analysis)."""
        return list(self._transition_log)

    # -- execution ---------------------------------------------------------
    def enabled_transition(self, valuation: Valuation) -> Transition:
        """The unique transition enabled by ``valuation`` right now."""
        raise NotImplementedError

    def commit(self, transition: Transition,
               apply_actions: bool = True) -> int:
        """Take a previously selected transition (two-phase stepping).

        Multi-clock networks select transitions for all coincident
        ticks against the pre-instant scoreboard, then commit them —
        pass ``apply_actions=False`` when the caller sequences the
        scoreboard updates itself.
        """
        if apply_actions:
            for action in transition.actions:
                action.apply(self._scoreboard)
        self._state = transition.target
        if self._record_history:
            self._transition_log.append(transition)
            self._states.append(self._state)
        if self._state == self._automaton.final:
            self._detections.append(self._tick)
        self._tick += 1
        return self._state

    def step(self, valuation: Valuation) -> int:
        """Consume one trace element; return the new state."""
        return self.commit(self.enabled_transition(valuation))

    def feed(self, trace: Iterable[Valuation]) -> "EngineBase":
        for valuation in trace:
            self.step(valuation)
        return self

    def drain_detections(self) -> List[int]:
        """Detections recorded since the last drain (then forgotten).

        Streaming consumers call this once per tick (or batch of ticks)
        so that a monitor observing billions of ticks never accumulates
        an unbounded detection list inside the engine.
        """
        drained = self._detections
        self._detections = []
        return drained

    def result(self) -> MonitorResult:
        """The run's outcome (requires ``record_history=True``).

        A history-free engine cannot produce a faithful result — its
        state sequence was never recorded and detections may have been
        drained — so asking for one is an error, not silently wrong
        data.  Streaming consumers read ``drain_detections`` instead.
        """
        if not self._record_history:
            raise MonitorError(
                f"monitor {self._automaton.name!r}: result() needs "
                f"record_history=True; streaming engines report through "
                f"drain_detections()"
            )
        return MonitorResult(
            self._automaton.name, list(self._states),
            list(self._detections), self._tick,
            transitions=tuple(self._transition_log),
        )

    def reset(self) -> None:
        """Return to the initial configuration.

        An injected (shared) scoreboard is left untouched — only an
        engine-owned scoreboard is cleared, so resetting one engine of
        a multi-clock network cannot wipe its peers' causality state.
        """
        self._state = self._automaton.initial
        self._tick = 0
        self._states = [self._automaton.initial]
        self._detections = []
        self._transition_log = []
        if self._owns_scoreboard:
            self._scoreboard.clear()


class MonitorEngine(EngineBase):
    """Incremental monitor execution with an (optionally shared) scoreboard."""

    def __init__(self, monitor: Monitor,
                 scoreboard: Optional[Scoreboard] = None,
                 record_history: bool = True):
        super().__init__(monitor, scoreboard, record_history=record_history)
        self._monitor = monitor

    @property
    def monitor(self) -> Monitor:
        return self._monitor

    def enabled_transition(self, valuation: Valuation) -> Transition:
        """The unique transition enabled by ``valuation`` right now."""
        enabled = [
            t
            for t in self._monitor.transitions_from(self._state)
            if t.guard.evaluate(valuation, self._scoreboard)
        ]
        if not enabled:
            raise MonitorError(
                f"monitor {self._monitor.name!r}: no transition enabled in "
                f"state {self._state} on input {valuation!r} "
                f"(scoreboard {self._scoreboard!r})"
            )
        if len(enabled) > 1:
            targets = {(t.target, t.actions) for t in enabled}
            if len(targets) > 1:
                raise MonitorError(
                    f"monitor {self._monitor.name!r}: nondeterministic in "
                    f"state {self._state} on input {valuation!r}: "
                    f"{[t.label() for t in enabled]}"
                )
        return enabled[0]


def run_monitor(monitor: Monitor, trace: Trace,
                scoreboard: Optional[Scoreboard] = None) -> MonitorResult:
    """Run ``monitor`` over the whole ``trace`` and return the result.

    A detection at tick ``i`` means the window ``[i - n + 1, i]`` of the
    trace realised the scenario (``n`` being the chart's tick count).
    """
    engine = MonitorEngine(monitor, scoreboard=scoreboard)
    engine.feed(trace)
    return engine.result()
