"""Graphviz DOT export for monitors (and whole networks).

Figure-style rendering: circles for states, double circle for the
final state, edges labelled ``guard / actions``.  Feed the output to
``dot -Tsvg`` to regenerate the paper's monitor diagrams.
"""

from __future__ import annotations

from typing import List, Optional

from repro.monitor.automaton import Monitor

__all__ = ["monitor_to_dot", "network_to_dot"]


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def monitor_to_dot(monitor: Monitor, title: Optional[str] = None,
                   max_label: int = 60) -> str:
    """Render one monitor as a DOT digraph."""
    lines: List[str] = []
    lines.append(f'digraph "{_escape(title or monitor.name)}" {{')
    lines.append("  rankdir=LR;")
    lines.append('  node [shape=circle, fontsize=11];')
    lines.append(f'  __start [shape=point, label=""];')
    lines.append(f"  __start -> {monitor.initial};")
    for state in monitor.states:
        shape = "doublecircle" if state == monitor.final else "circle"
        lines.append(f'  {state} [shape={shape}];')
    for transition in monitor.transitions:
        label = transition.label()
        if len(label) > max_label:
            label = label[: max_label - 3] + "..."
        lines.append(
            f'  {transition.source} -> {transition.target} '
            f'[label="{_escape(label)}"];'
        )
    lines.append("}")
    return "\n".join(lines)


def network_to_dot(network, title: Optional[str] = None) -> str:
    """Render a multi-clock monitor network: one cluster per domain."""
    lines: List[str] = []
    lines.append(f'digraph "{_escape(title or network.name)}" {{')
    lines.append("  rankdir=LR;")
    lines.append("  compound=true;")
    for index, local in enumerate(network.locals):
        lines.append(f"  subgraph cluster_{index} {{")
        lines.append(
            f'    label="{_escape(local.component)} @ {_escape(local.clock.name)}";'
        )
        monitor = local.monitor
        prefix = f"m{index}_"
        lines.append(f'    {prefix}start [shape=point, label=""];')
        lines.append(f"    {prefix}start -> {prefix}{monitor.initial};")
        for state in monitor.states:
            shape = "doublecircle" if state == monitor.final else "circle"
            lines.append(f"    {prefix}{state} [shape={shape}, label={state}];")
        for transition in monitor.transitions:
            label = transition.label()
            if len(label) > 40:
                label = label[:37] + "..."
            lines.append(
                f"    {prefix}{transition.source} -> {prefix}{transition.target} "
                f'[label="{_escape(label)}"];'
            )
        lines.append("  }")
    lines.append(
        '  scoreboard [shape=box, style=dashed, label="shared scoreboard"];'
    )
    lines.append("}")
    return "\n".join(lines)
