"""Size and structure metrics for monitors (used by the benchmarks)."""

from __future__ import annotations

from typing import Dict, List

from repro.logic.expr import Expr
from repro.monitor.automaton import Monitor

__all__ = ["guard_literals", "monitor_stats"]


def guard_literals(expr: Expr) -> int:
    """Number of atomic literals in a guard expression."""
    atoms = 0
    stack = [expr]
    while stack:
        node = stack.pop()
        children = node.children()
        if children:
            stack.extend(children)
        else:
            atoms += 1
    return atoms


def monitor_stats(monitor: Monitor) -> Dict[str, float]:
    """Structural metrics: states, edges, guard complexity, actions.

    ``forward_edges`` counts edges ``s -> s+1`` (the scenario spine),
    ``backward_edges`` the failure transitions; the paper's figures
    show exactly this skeleton.
    """
    forward = sum(
        1 for t in monitor.transitions if t.target == t.source + 1
    )
    backward = sum(
        1 for t in monitor.transitions if t.target <= t.source
    )
    literals = [guard_literals(t.guard) for t in monitor.transitions]
    action_edges = sum(1 for t in monitor.transitions if t.actions)
    return {
        "states": monitor.n_states,
        "transitions": monitor.transition_count(),
        "forward_edges": forward,
        "backward_edges": backward,
        "alphabet": len(monitor.alphabet),
        "guard_literals_total": sum(literals),
        "guard_literals_max": max(literals) if literals else 0,
        "action_edges": action_edges,
    }
