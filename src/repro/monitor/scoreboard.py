"""The dynamic scoreboard: event-occurrence bookkeeping for causality.

"The monitor automaton uses a dynamic 'scoreboard' for storing the
information regarding the event occurrences, which is helpful in
implementing the checks related to causality relationships between
events during a run."  (Section 4)

The scoreboard is a *multiset* of event names: the pipelined burst
monitor of Figure 7 adds ``MCmdRd`` once per outstanding transaction,
so the same event may be recorded several times.  ``Chk_evt`` is a
presence test; ``Del_evt`` removes one occurrence.  In a multi-clock
monitor network a single scoreboard instance is shared by all local
monitors — it is the synchronisation medium between clock domains.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Tuple

from repro.errors import ScoreboardError

__all__ = ["Scoreboard"]


class Scoreboard:
    """A multiset of recorded event occurrences.

    ``strict`` controls ``Del_evt`` on an absent event: the paper's
    algorithm only deletes what it previously added, so a strict
    scoreboard treats that as an internal error; lenient mode clamps at
    zero (useful when experimenting with hand-edited monitors).
    """

    def __init__(self, strict: bool = True):
        self._counts: Counter = Counter()
        self._strict = bool(strict)
        self._history: List[Tuple[str, str]] = []

    # -- the paper's three operations -------------------------------------
    def add(self, *events: str) -> None:
        """``Add_evt(e, ...)`` — record one occurrence of each event."""
        for event in events:
            self._counts[event] += 1
            self._history.append(("add", event))

    def delete(self, *events: str) -> None:
        """``Del_evt(e, ...)`` — remove one occurrence of each event."""
        for event in events:
            if self._counts[event] <= 0:
                if self._strict:
                    raise ScoreboardError(
                        f"Del_evt({event}): event not present on scoreboard"
                    )
                self._counts[event] = 0
                continue
            self._counts[event] -= 1
            self._history.append(("del", event))

    def contains(self, event: str) -> bool:
        """``Chk_evt(e)`` — is at least one occurrence recorded?"""
        return self._counts[event] > 0

    # -- inspection --------------------------------------------------------
    def count(self, event: str) -> int:
        """Number of recorded occurrences of ``event``."""
        return self._counts[event]

    def snapshot(self) -> Dict[str, int]:
        """Current contents as an event -> count map (positive only)."""
        return {e: c for e, c in self._counts.items() if c > 0}

    def history(self) -> List[Tuple[str, str]]:
        """Chronological list of ``("add"|"del", event)`` operations."""
        return list(self._history)

    def restore(self, snapshot: Dict[str, int]) -> None:
        """Reset contents to a previously taken :meth:`snapshot`."""
        self._counts = Counter(
            {e: c for e, c in snapshot.items() if c > 0}
        )

    def clear(self) -> None:
        self._counts.clear()

    def is_empty(self) -> bool:
        return not any(c > 0 for c in self._counts.values())

    def __contains__(self, event: str) -> bool:
        return self.contains(event)

    def __len__(self) -> int:
        return sum(c for c in self._counts.values() if c > 0)

    def __repr__(self):
        inside = ", ".join(
            f"{e}x{c}" if c > 1 else e
            for e, c in sorted(self.snapshot().items())
        )
        return f"Scoreboard[{inside}]"
