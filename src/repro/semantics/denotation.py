"""Chart denotations: the run-satisfaction relation ``r |= C``.

"Intuitively, it can be seen that for every run associated with an
SCESC there is a finite interval in which the events occur according to
the ordering specified by the SCESC" (Figure 3).  This module decides
that relation directly from the chart syntax — *independently* of the
monitor construction — so it serves as the ground-truth oracle when
testing the paper's correctness claim ``[[C]] = Sigma* . L(M) . Sigma^w``.

Window matching is defined recursively over the chart tree:

* ``SCESC`` — the window has exactly ``n`` ticks and each tick's
  valuation satisfies the corresponding pattern expression (causality
  arrows inside an SCESC are subsumed by the pattern: the cause event
  is required at its own grid line);
* ``Seq`` — the window splits into consecutive child windows;
* ``Par`` — every child matches a prefix of the window, the window
  being as long as the longest child (shorter children are padded with
  unconstrained ticks);
* ``Alt`` — some child matches the window;
* ``Loop`` — the window splits into ``count`` (or, unbounded, any
  positive number of) consecutive body windows;
* ``Implication`` — treated at the run level: every antecedent window
  is immediately followed by a consequent window.

Multi-clock satisfaction (``AsyncPar``) projects the global run onto
each component clock, requires a matching window per component, and
checks cross-domain causality arrows by *absolute time*.
"""

from __future__ import annotations

from functools import lru_cache
from typing import FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.cesc.ast import SCESC
from repro.cesc.charts import (
    Alt,
    AsyncPar,
    Chart,
    Implication,
    Loop,
    Par,
    ScescChart,
    Seq,
    as_chart,
)
from repro.errors import ChartError
from repro.semantics.run import GlobalRun, Trace

__all__ = [
    "matches_window",
    "chart_window_lengths",
    "satisfying_windows",
    "run_satisfies",
    "global_run_satisfies",
]


def _scesc_matches(scesc: SCESC, trace: Trace, start: int) -> bool:
    pattern = scesc.pattern_exprs()
    if start + len(pattern) > trace.length:
        return False
    return all(
        expr.evaluate(trace[start + offset])
        for offset, expr in enumerate(pattern)
    )


def chart_window_lengths(chart: Chart, limit: int) -> FrozenSet[int]:
    """All window lengths ``<= limit`` the chart can denote."""
    chart = as_chart(chart)
    if isinstance(chart, ScescChart):
        n = chart.scesc.n_ticks
        return frozenset({n} if n <= limit else ())
    if isinstance(chart, Seq):
        lengths: Set[int] = {0}
        for child in chart.children:
            child_lengths = chart_window_lengths(child, limit)
            lengths = {
                a + b for a in lengths for b in child_lengths if a + b <= limit
            }
        return frozenset(lengths)
    if isinstance(chart, Par):
        best: Set[int] = set()
        per_child = [chart_window_lengths(c, limit) for c in chart.children]
        if any(not lengths for lengths in per_child):
            return frozenset()
        import itertools

        for combo in itertools.product(*per_child):
            value = max(combo)
            if value <= limit:
                best.add(value)
        return frozenset(best)
    if isinstance(chart, Alt):
        lengths = set()
        for child in chart.children:
            lengths |= chart_window_lengths(child, limit)
        return frozenset(lengths)
    if isinstance(chart, Loop):
        body = chart_window_lengths(chart.body, limit)
        if chart.count is not None:
            lengths = {0}
            for _ in range(chart.count):
                lengths = {
                    a + b for a in lengths for b in body if a + b <= limit
                }
            return frozenset(lengths)
        reachable: Set[int] = set()
        frontier: Set[int] = set(body)
        while frontier:
            reachable |= frontier
            frontier = {
                a + b for a in frontier for b in body if a + b <= limit
            } - reachable
        return frozenset(reachable)
    if isinstance(chart, Implication):
        raise ChartError(
            "implication denotes a run property, not a window language; "
            "use run_satisfies"
        )
    raise ChartError(f"no window semantics for {chart!r}")


def matches_window(chart: Chart, trace: Trace, start: int, length: int) -> bool:
    """Does ``trace[start : start+length]`` realise the chart's scenario?"""
    chart = as_chart(chart)
    if start < 0 or start + length > trace.length:
        return False
    if isinstance(chart, ScescChart):
        return (
            length == chart.scesc.n_ticks
            and _scesc_matches(chart.scesc, trace, start)
        )
    if isinstance(chart, Seq):
        return _matches_seq(tuple(chart.children), trace, start, length)
    if isinstance(chart, Par):
        lengths = [chart_window_lengths(c, length) for c in chart.children]
        if any(not ls for ls in lengths):
            return False
        import itertools

        for combo in itertools.product(*lengths):
            if max(combo) != length:
                continue
            if all(
                matches_window(child, trace, start, child_len)
                for child, child_len in zip(chart.children, combo)
            ):
                return True
        return False
    if isinstance(chart, Alt):
        return any(
            matches_window(child, trace, start, length)
            for child in chart.children
        )
    if isinstance(chart, Loop):
        return _matches_loop(chart, trace, start, length)
    raise ChartError(f"no window semantics for {chart!r}")


def _matches_seq(children: Tuple[Chart, ...], trace: Trace, start: int,
                 length: int) -> bool:
    if not children:
        return length == 0
    head, tail = children[0], children[1:]
    for head_length in sorted(chart_window_lengths(head, length)):
        if head_length > length:
            break
        if matches_window(head, trace, start, head_length) and _matches_seq(
            tail, trace, start + head_length, length - head_length
        ):
            return True
    return False


def _matches_loop(chart: Loop, trace: Trace, start: int, length: int) -> bool:
    body = chart.body
    body_lengths = sorted(chart_window_lengths(body, length))

    def consume(position: int, remaining: int, iterations: int) -> bool:
        if remaining == 0:
            if chart.count is not None:
                return iterations == chart.count
            return iterations >= 1
        if chart.count is not None and iterations >= chart.count:
            return False
        for body_length in body_lengths:
            if body_length == 0 or body_length > remaining:
                continue
            if matches_window(body, trace, position, body_length) and consume(
                position + body_length, remaining - body_length, iterations + 1
            ):
                return True
        return False

    return consume(start, length, 0)


def satisfying_windows(chart: Chart, trace: Trace) -> List[Tuple[int, int]]:
    """All ``(start, length)`` windows of ``trace`` matching the chart."""
    chart = as_chart(chart)
    windows: List[Tuple[int, int]] = []
    lengths = sorted(chart_window_lengths(chart, trace.length))
    for start in range(trace.length + 1):
        for length in lengths:
            if start + length <= trace.length and matches_window(
                chart, trace, start, length
            ):
                windows.append((start, length))
    return windows


def run_satisfies(chart: Chart, trace: Trace) -> bool:
    """The satisfaction relation ``r |= C`` on a finite run prefix.

    For window charts this is Figure 3's "some finite interval
    matches".  For :class:`~repro.cesc.charts.Implication` it is the
    safety reading: every antecedent window is immediately followed by
    a matching consequent window (antecedent windows too close to the
    end of the finite prefix to decide are ignored — the prefix is
    *not* a counterexample).
    """
    chart = as_chart(chart)
    if isinstance(chart, Implication):
        lengths = chart_window_lengths(chart.consequent, trace.length + 1)
        open_ended = _has_unbounded_loop(chart.consequent)
        for start, length in satisfying_windows(chart.antecedent, trace):
            follow = start + length
            decidable = [n for n in lengths if follow + n <= trace.length]
            if any(
                matches_window(chart.consequent, trace, follow, n)
                for n in decidable
            ):
                continue
            undecided = open_ended or any(
                follow + n > trace.length for n in lengths
            )
            if not undecided:
                return False
        return True
    return bool(satisfying_windows(chart, trace))


def _has_unbounded_loop(chart: Chart) -> bool:
    chart = as_chart(chart)
    if isinstance(chart, Loop):
        return chart.count is None or _has_unbounded_loop(chart.body)
    if isinstance(chart, (Seq, Par, Alt)):
        return any(_has_unbounded_loop(c) for c in chart.children)
    if isinstance(chart, Implication):
        return _has_unbounded_loop(chart.antecedent) or _has_unbounded_loop(
            chart.consequent
        )
    return False


def global_run_satisfies(chart: AsyncPar, run: GlobalRun) -> bool:
    """Multi-clock satisfaction of an asynchronous composition.

    Each component chart must match a window of its clock's projection,
    and every cross-domain causality arrow must be realised with the
    cause occurring at a strictly earlier absolute time than the
    effect.
    """
    if not isinstance(chart, AsyncPar):
        raise ChartError("global_run_satisfies requires an AsyncPar chart")

    component_windows: List[List[Tuple[str, int, int]]] = []
    projections = {}
    clock_of = {}
    for child in chart.children:
        clocks = child.clocks()
        if len(clocks) != 1:
            raise ChartError(
                f"async component {child.name!r} must be single-clocked"
            )
        clock = next(iter(clocks))
        clock_of[child.name] = clock
        projection = run.project(clock.name)
        projections[child.name] = projection
        windows = satisfying_windows(child, projection)
        if not windows:
            return False
        component_windows.append(
            [(child.name, start, length) for start, length in windows]
        )

    import itertools

    for assignment in itertools.product(*component_windows):
        starts = {name: start for name, start, _ in assignment}
        if _cross_arrows_respected(chart, run, clock_of, starts):
            return True
    return False


def _cross_arrows_respected(chart: AsyncPar, run: GlobalRun, clock_of,
                            starts) -> bool:
    for arrow in chart.cross_arrows:
        cause_clock = clock_of[arrow.source_chart]
        effect_clock = clock_of[arrow.target_chart]
        cause_times = run.tick_times(cause_clock.name)
        effect_times = run.tick_times(effect_clock.name)
        cause_index = starts[arrow.source_chart] + arrow.cause.tick_index
        effect_index = starts[arrow.target_chart] + arrow.effect.tick_index
        if cause_index >= len(cause_times) or effect_index >= len(effect_times):
            return False
        if not cause_times[cause_index] < effect_times[effect_index]:
            return False
    return True
