"""Trace generation: random noise, chart-satisfying and chart-violating runs.

Used by tests (oracle-vs-monitor agreement), benchmarks (workload
generation) and the fault-injection flow.  All generation is seeded and
deterministic.

The satisfying generator embeds a window that realises the chart inside
random noise, mirroring Figure 3: "for every run associated with an
SCESC there is a finite interval in which the events occur according to
the ordering specified by the SCESC" — with an *arbitrary* starting
point.
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.cesc.ast import SCESC, Clock
from repro.cesc.charts import AsyncPar, Chart, ScescChart, as_chart
from repro.errors import ChartError
from repro.logic.expr import Expr
from repro.logic.sat import satisfying_assignment
from repro.logic.valuation import Valuation
from repro.semantics.run import GlobalRun, Trace

__all__ = ["TraceGenerator"]


class TraceGenerator:
    """Seeded generator of traces relative to a chart's alphabet."""

    def __init__(self, chart: Chart, seed: int = 0,
                 noise_density: float = 0.3):
        self._chart = as_chart(chart)
        self._alphabet = tuple(sorted(self._chart.alphabet()))
        self._rng = random.Random(seed)
        self._noise_density = noise_density

    @property
    def alphabet(self) -> Tuple[str, ...]:
        return self._alphabet

    # -- primitive draws -------------------------------------------------
    def random_valuation(self) -> Valuation:
        """A random valuation with ``noise_density`` expected true symbols."""
        true = {
            s for s in self._alphabet if self._rng.random() < self._noise_density
        }
        return Valuation(true, self._alphabet)

    def random_trace(self, length: int) -> Trace:
        """Pure noise — no scenario intentionally embedded."""
        return Trace(
            [self.random_valuation() for _ in range(length)], self._alphabet
        )

    def seed_corpus(self, count: int, noise_length: int = 8,
                    prefix: int = 2, suffix: int = 2) -> List[Trace]:
        """A mixed batch of seed traces for coverage campaigns.

        Alternates satisfying runs (scenario window in noise),
        near-miss violating windows, and pure noise — the cheap random
        phase a :class:`~repro.campaign.CoverageCampaign` folds into
        coverage before directed generation targets what is left.
        Single-leaf charts get the full mix; multi-leaf charts fall
        back to noise only (window embedding needs one scenario).
        """
        single_leaf = len(self._chart.leaves()) == 1
        traces: List[Trace] = []
        for index in range(count):
            kind = index % 3 if single_leaf else 2
            if kind == 0:
                traces.append(self.satisfying_trace(
                    prefix=prefix, suffix=suffix
                ))
            elif kind == 1:
                traces.append(self.violating_window())
            else:
                traces.append(self.random_trace(noise_length))
        return traces

    # -- satisfying windows -------------------------------------------------
    def valuation_matching(self, expr: Expr,
                           minimal: bool = False) -> Valuation:
        """Some valuation over the alphabet satisfying ``expr``.

        With ``minimal`` the unconstrained symbols are left false;
        otherwise they are randomised (the scenario tolerates unrelated
        activity, as real bus traffic would show).
        """
        model = satisfying_assignment([expr])
        if model is None:
            raise ChartError(f"pattern element {expr!r} is unsatisfiable")
        forced_true = {
            name for (kind, name), value in model.items()
            if kind in ("e", "p") and value
        }
        forced_false = {
            name for (kind, name), value in model.items()
            if kind in ("e", "p") and not value
        }
        true = set(forced_true)
        if not minimal:
            for symbol in self._alphabet:
                if symbol in forced_true or symbol in forced_false:
                    continue
                if self._rng.random() < self._noise_density:
                    candidate = true | {symbol}
                    if expr.evaluate(Valuation(candidate, self._alphabet)):
                        true = candidate
        alphabet = set(self._alphabet) | forced_true
        return Valuation(true | forced_true, alphabet)

    def scenario_window(self, scesc: Optional[SCESC] = None,
                        minimal: bool = False) -> Trace:
        """A window of valuations realising the (single) SCESC scenario."""
        leaf = scesc
        if leaf is None:
            leaves = self._chart.leaves()
            if len(leaves) != 1:
                raise ChartError(
                    "scenario_window without argument needs a single-leaf chart"
                )
            leaf = leaves[0]
        return Trace(
            [
                self.valuation_matching(expr, minimal=minimal)
                for expr in leaf.pattern_exprs()
            ],
            self._alphabet,
        )

    def satisfying_trace(self, scesc: Optional[SCESC] = None,
                         prefix: int = 0, suffix: int = 0,
                         minimal_window: bool = False) -> Trace:
        """Noise, then a full scenario window, then noise."""
        window = self.scenario_window(scesc, minimal=minimal_window)
        return (
            self.random_trace(prefix)
            .concat(window)
            .concat(self.random_trace(suffix))
        )

    # -- violating traces --------------------------------------------------
    def violating_window(self, scesc: Optional[SCESC] = None,
                         break_at: Optional[int] = None) -> Trace:
        """A near-miss window: one tick's constraint is falsified.

        The scenario proceeds correctly up to ``break_at`` (random by
        default) where the grid-line expression is made false; the
        remaining ticks are noise.
        """
        leaf = scesc
        if leaf is None:
            leaves = self._chart.leaves()
            if len(leaves) != 1:
                raise ChartError(
                    "violating_window without argument needs a single-leaf chart"
                )
            leaf = leaves[0]
        pattern = leaf.pattern_exprs()
        index = (
            break_at
            if break_at is not None
            else self._rng.randrange(len(pattern))
        )
        if not (0 <= index < len(pattern)):
            raise ChartError(f"break_at {index} outside pattern of length "
                             f"{len(pattern)}")
        valuations: List[Valuation] = []
        for position, expr in enumerate(pattern):
            if position == index:
                valuations.append(self._falsifying_valuation(expr))
            else:
                valuations.append(self.valuation_matching(expr))
        return Trace(valuations, self._alphabet)

    def _falsifying_valuation(self, expr: Expr) -> Valuation:
        for _ in range(64):
            candidate = self.random_valuation()
            if not expr.evaluate(candidate):
                return candidate
        # Dense expressions: fall back to SAT on the negation.
        from repro.logic.expr import Not

        model = satisfying_assignment([Not(expr)])
        if model is None:
            raise ChartError(f"pattern element {expr!r} is a tautology; "
                             "cannot construct a violating tick")
        true = {
            name for (kind, name), value in model.items()
            if kind in ("e", "p") and value
        }
        return Valuation(true & set(self._alphabet), self._alphabet)

    # -- multi-clock --------------------------------------------------------
    def global_run(self, chart: AsyncPar, cycles: int = 12,
                   satisfy: bool = True) -> GlobalRun:
        """A global run for an async composition.

        With ``satisfy`` each component's scenario is embedded at a
        start offset consistent with the cross-domain arrows (causes
        strictly earlier in absolute time than effects); otherwise the
        domains carry pure noise.
        """
        if not isinstance(chart, AsyncPar):
            raise ChartError("global_run requires an AsyncPar chart")
        domains: Dict[Clock, Trace] = {}
        offsets: Dict[str, int] = {}
        order = self._schedule_offsets(chart) if satisfy else {
            child.name: 0 for child in chart.children
        }
        for child in chart.children:
            clocks = child.clocks()
            if len(clocks) != 1:
                raise ChartError("async components must be single-clocked")
            clock = next(iter(clocks))
            leaves = child.leaves()
            if len(leaves) != 1:
                raise ChartError(
                    "global_run supports single-SCESC components"
                )
            leaf = leaves[0]
            offset = order[child.name]
            offsets[child.name] = offset
            length = max(cycles, offset + leaf.n_ticks)
            generator = TraceGenerator(
                ScescChart(leaf), seed=self._rng.randrange(1 << 30),
                noise_density=0.0,
            )
            if satisfy:
                window = generator.scenario_window(leaf, minimal=True)
                pieces = (
                    generator.random_trace(offset)
                    .concat(window)
                    .concat(generator.random_trace(length - offset - leaf.n_ticks))
                )
            else:
                pieces = generator.random_trace(length)
            domains[clock] = pieces
        return GlobalRun.merge(domains)

    def _schedule_offsets(self, chart: AsyncPar) -> Dict[str, int]:
        """Start offsets per component making cross arrows time-respecting."""
        offsets = {child.name: 0 for child in chart.children}
        clock_of: Dict[str, Clock] = {}
        for child in chart.children:
            clock_of[child.name] = next(iter(child.clocks()))
        for _ in range(32):
            adjusted = False
            for arrow in chart.cross_arrows:
                cause_clock = clock_of[arrow.source_chart]
                effect_clock = clock_of[arrow.target_chart]
                cause_time = cause_clock.tick_time(
                    offsets[arrow.source_chart] + arrow.cause.tick_index
                )
                effect_time = effect_clock.tick_time(
                    offsets[arrow.target_chart] + arrow.effect.tick_index
                )
                if cause_time >= effect_time:
                    offsets[arrow.target_chart] += 1
                    adjusted = True
            if not adjusted:
                return offsets
        raise ChartError(
            "could not schedule component offsets satisfying cross arrows"
        )
