"""Formal semantics of CESC: states, runs, and chart denotations.

The paper defines a *state* as a truth assignment over ``PROP`` and
``EVENTS`` and a *run* as a map from clock ticks to states.  A chart
denotes the set of runs containing a finite window in which events
occur as the chart specifies — see Figure 3's semantic mapping.

* :mod:`repro.semantics.state` — states and their valuation view;
* :mod:`repro.semantics.run` — finite traces, single- and multi-clock
  runs, global-run construction (union of component clock ticks);
* :mod:`repro.semantics.denotation` — window-matching and the run
  satisfaction relation ``r |= C`` for all chart constructs;
* :mod:`repro.semantics.generator` — random/satisfying/violating trace
  generation for tests and benchmarks.
"""

from repro.semantics.denotation import (
    chart_window_lengths,
    matches_window,
    run_satisfies,
    satisfying_windows,
)
from repro.semantics.generator import TraceGenerator
from repro.semantics.run import GlobalRun, GlobalTick, Trace
from repro.semantics.state import State

__all__ = [
    "GlobalRun",
    "GlobalTick",
    "State",
    "Trace",
    "TraceGenerator",
    "chart_window_lengths",
    "matches_window",
    "run_satisfies",
    "satisfying_windows",
]
