"""States: the paper's ``s = (f1, f2)`` truth assignments.

A :class:`State` records which propositions and which events are true
at one clock tick, keeping the paper's two-component structure
(``f1 : PROP -> Bool``, ``f2 : EVENTS -> Bool``) while exposing a flat
:class:`~repro.logic.valuation.Valuation` view for expression
evaluation (event and proposition namespaces are disjoint by
construction — :mod:`repro.cesc.validate` enforces this at chart
level).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional

from repro.errors import ExprError
from repro.logic.valuation import Valuation

__all__ = ["State"]


class State:
    """Truth assignment over propositions and events at one tick."""

    __slots__ = ("true_events", "true_props", "event_alphabet", "prop_alphabet")

    def __init__(
        self,
        true_events: Iterable[str] = (),
        true_props: Iterable[str] = (),
        event_alphabet: Optional[Iterable[str]] = None,
        prop_alphabet: Optional[Iterable[str]] = None,
    ):
        events = frozenset(true_events)
        props = frozenset(true_props)
        event_alpha = frozenset(event_alphabet) if event_alphabet is not None else events
        prop_alpha = frozenset(prop_alphabet) if prop_alphabet is not None else props
        if not events <= event_alpha:
            raise ExprError("true events must lie within the event alphabet")
        if not props <= prop_alpha:
            raise ExprError("true props must lie within the prop alphabet")
        overlap = event_alpha & prop_alpha
        if overlap:
            raise ExprError(
                f"symbols {sorted(overlap)} appear in both EVENTS and PROP"
            )
        object.__setattr__(self, "true_events", events)
        object.__setattr__(self, "true_props", props)
        object.__setattr__(self, "event_alphabet", event_alpha)
        object.__setattr__(self, "prop_alphabet", prop_alpha)

    def __setattr__(self, name, value):
        raise AttributeError("State is immutable")

    # -- the paper's projections -----------------------------------------
    def f1(self, prop: str) -> bool:
        """Truth of a proposition (the paper's ``pi_1(s)``)."""
        return prop in self.true_props

    def f2(self, event: str) -> bool:
        """Truth of an event (the paper's ``pi_2(s)``)."""
        return event in self.true_events

    def valuation(self) -> Valuation:
        """Flat valuation over the combined alphabet."""
        return Valuation(
            self.true_events | self.true_props,
            self.event_alphabet | self.prop_alphabet,
        )

    def is_true(self, symbol: str) -> bool:
        """Uniform lookup used by expression evaluation."""
        return symbol in self.true_events or symbol in self.true_props

    def __eq__(self, other):
        return isinstance(other, State) and (
            self.true_events,
            self.true_props,
            self.event_alphabet,
            self.prop_alphabet,
        ) == (
            other.true_events,
            other.true_props,
            other.event_alphabet,
            other.prop_alphabet,
        )

    def __hash__(self):
        return hash(
            (self.true_events, self.true_props, self.event_alphabet,
             self.prop_alphabet)
        )

    def __repr__(self):
        events = ",".join(sorted(self.true_events)) or "-"
        props = ",".join(sorted(self.true_props)) or "-"
        return f"State(events={{{events}}}, props={{{props}}})"
