"""Runs and traces: sequences of states along clock ticks.

A :class:`Trace` is a finite, single-clock run prefix — what a monitor
actually reads.  A :class:`GlobalRun` is the paper's multi-clock run:
"a global run is defined over a global clock, which is obtained as a
union of clock ticks contributed by all the component clocks in the
system".  :func:`GlobalRun.merge` builds that union from per-domain
traces, tagging each global tick with the set of clocks that tick at
that instant.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.cesc.ast import Clock
from repro.errors import ChartError
from repro.logic.valuation import Valuation
from repro.slots import SlotPickle

__all__ = ["Trace", "GlobalTick", "GlobalRun"]


class Trace(SlotPickle):
    """A finite single-clock run prefix: one valuation per clock tick."""

    __slots__ = ("valuations", "alphabet")

    def __init__(self, valuations: Iterable[Valuation],
                 alphabet: Optional[Iterable[str]] = None):
        vals = tuple(valuations)
        if alphabet is None:
            symbols = set()
            for valuation in vals:
                symbols |= valuation.alphabet
            alpha = frozenset(symbols)
        else:
            alpha = frozenset(alphabet)
        object.__setattr__(self, "valuations", vals)
        object.__setattr__(self, "alphabet", alpha)

    def __setattr__(self, name, value):
        raise AttributeError("Trace is immutable")

    @classmethod
    def from_sets(cls, true_sets: Iterable[Iterable[str]],
                  alphabet: Optional[Iterable[str]] = None) -> "Trace":
        """Build a trace from per-tick sets of true symbols.

        >>> Trace.from_sets([{"req"}, set(), {"ack"}]).length
        3
        """
        sets = [frozenset(s) for s in true_sets]
        if alphabet is None:
            alphabet = frozenset().union(*sets) if sets else frozenset()
        alpha = frozenset(alphabet)
        return cls([Valuation(s, alpha) for s in sets], alpha)

    @property
    def length(self) -> int:
        return len(self.valuations)

    def window(self, start: int, length: int) -> "Trace":
        """Sub-trace ``[start, start+length)``."""
        if start < 0 or start + length > self.length:
            raise ChartError(
                f"window [{start}, {start + length}) outside trace of "
                f"length {self.length}"
            )
        return Trace(self.valuations[start:start + length], self.alphabet)

    def concat(self, other: "Trace") -> "Trace":
        return Trace(
            self.valuations + other.valuations, self.alphabet | other.alphabet
        )

    def __getitem__(self, index: int) -> Valuation:
        return self.valuations[index]

    def __len__(self) -> int:
        return len(self.valuations)

    def __iter__(self) -> Iterator[Valuation]:
        return iter(self.valuations)

    def __eq__(self, other):
        return (
            isinstance(other, Trace)
            and self.valuations == other.valuations
            and self.alphabet == other.alphabet
        )

    def __hash__(self):
        return hash((self.valuations, self.alphabet))

    def __repr__(self):
        inner = "; ".join(repr(v) for v in self.valuations)
        return f"Trace[{inner}]"


class GlobalTick(SlotPickle):
    """One instant of the global clock.

    ``time`` is the absolute instant; ``clocks`` the names of component
    clocks ticking then; ``valuations`` maps each such clock to the
    valuation its domain observes at that instant.
    """

    __slots__ = ("time", "clocks", "valuations")

    def __init__(self, time: Fraction, valuations: Dict[str, Valuation]):
        object.__setattr__(self, "time", Fraction(time))
        object.__setattr__(self, "clocks", frozenset(valuations))
        object.__setattr__(self, "valuations", dict(valuations))

    def __setattr__(self, name, value):
        raise AttributeError("GlobalTick is immutable")

    def valuation_for(self, clock_name: str) -> Optional[Valuation]:
        return self.valuations.get(clock_name)

    def __repr__(self):
        parts = ", ".join(
            f"{name}:{self.valuations[name]!r}" for name in sorted(self.clocks)
        )
        return f"GlobalTick(t={self.time}, {parts})"


class GlobalRun(SlotPickle):
    """A finite multi-clock run: global ticks ordered by absolute time."""

    __slots__ = ("ticks",)

    def __init__(self, ticks: Sequence[GlobalTick]):
        ordered = tuple(ticks)
        for earlier, later in zip(ordered, ordered[1:]):
            if earlier.time >= later.time:
                raise ChartError("global ticks must be strictly increasing in time")
        object.__setattr__(self, "ticks", ordered)

    def __setattr__(self, name, value):
        raise AttributeError("GlobalRun is immutable")

    @classmethod
    def merge(cls, domains: Dict[Clock, Trace]) -> "GlobalRun":
        """Union of component clock ticks — the paper's global clock.

        Each domain contributes ticks at ``phase + i * period``; ticks
        of different clocks landing at the same instant share one
        global tick.
        """
        by_time: Dict[Fraction, Dict[str, Valuation]] = {}
        for clock, trace in domains.items():
            for index, valuation in enumerate(trace):
                time = clock.tick_time(index)
                by_time.setdefault(time, {})[clock.name] = valuation
        ticks = [
            GlobalTick(time, by_time[time]) for time in sorted(by_time)
        ]
        return cls(ticks)

    def project(self, clock_name: str) -> Trace:
        """The local trace a given clock domain observes."""
        valuations = [
            tick.valuations[clock_name]
            for tick in self.ticks
            if clock_name in tick.clocks
        ]
        return Trace(valuations)

    def tick_times(self, clock_name: str) -> List[Fraction]:
        """Absolute times at which ``clock_name`` ticks."""
        return [t.time for t in self.ticks if clock_name in t.clocks]

    def clock_names(self) -> FrozenSet[str]:
        names: FrozenSet[str] = frozenset()
        for tick in self.ticks:
            names |= tick.clocks
        return names

    @property
    def length(self) -> int:
        return len(self.ticks)

    def __len__(self) -> int:
        return len(self.ticks)

    def __iter__(self) -> Iterator[GlobalTick]:
        return iter(self.ticks)

    def __getitem__(self, index: int) -> GlobalTick:
        return self.ticks[index]

    def __repr__(self):
        return f"GlobalRun({len(self.ticks)} ticks, clocks={sorted(self.clock_names())})"
