"""The coverage-closure loop: random seeds, then directed pressure.

A :class:`CoverageCampaign` connects the pieces the repo already had
but never wired together: :class:`~repro.semantics.generator.TraceGenerator`
randomness, :class:`~repro.analysis.coverage.MonitorCoverage`
accounting, and batch execution
(:func:`~repro.runtime.compiled.run_many` in-process,
:func:`~repro.trace.shard.run_sharded` across worker processes) — and
closes the loop with the :class:`~repro.campaign.directed.StimulusSynthesizer`:

1. *Exclude the impossible.*  One reachability pass proves which
   states/edges no run can ever exercise (``Tr`` completes the
   transition function over all scoreboard valuations, so dead edges
   are normal); they leave the coverage goal and are reported
   separately.
2. *Seed.*  A batch of random traces (satisfying windows, near-miss
   violations, noise) is executed and folded into coverage — cheap
   breadth first.
3. *Close.*  While coverage is below target and budget remains, every
   never-taken edge (then every unvisited state) becomes a directed
   trace — the shortest run provably taking it — executed in batches
   and folded back in.

Every directed trace carries the detection ticks its synthesis
predicted; the loop cross-checks the executed results against those
predictions, so a campaign run doubles as a differential test of the
execution backend it used.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.coverage import MonitorCoverage
from repro.campaign.directed import DirectedTrace, StimulusSynthesizer
from repro.cesc.charts import Chart, as_chart
from repro.errors import CampaignError
from repro.logic.valuation import Valuation
from repro.monitor.automaton import Monitor
from repro.runtime.compiled import CompiledMonitor
from repro.semantics.generator import TraceGenerator
from repro.semantics.run import Trace
from repro.synthesis.tr import tr_compiled
from repro.trace.bridge import trace_to_vcd
from repro.trace.shard import run_sharded

__all__ = ["CorpusEntry", "CampaignReport", "CoverageCampaign"]


class CorpusEntry:
    """One executed campaign trace and what the monitor did with it."""

    __slots__ = ("label", "kind", "trace", "detections")

    def __init__(self, label: str, kind: str, trace: Trace,
                 detections: Tuple[int, ...]):
        self.label = label
        self.kind = kind
        self.trace = trace
        self.detections = detections

    def __repr__(self):
        return (
            f"CorpusEntry({self.label!r}, kind={self.kind!r}, "
            f"ticks={self.trace.length}, detections={list(self.detections)})"
        )


class CampaignReport:
    """Outcome of one closure run: coverage, corpus, and bookkeeping."""

    def __init__(self, name: str, reached: bool, coverage: MonitorCoverage,
                 targets: Tuple[float, float], rounds: int,
                 traces_executed: int, ticks_executed: int,
                 directed_traces: int, corpus: List[CorpusEntry],
                 budget: int, exploration_exhaustive: bool = True):
        self.name = name
        self.reached = reached
        self.coverage = coverage
        #: False when the reachability search hit its depth/config
        #: bounds: nothing was excluded as unreachable (a truncated
        #: search proves nothing), so closure may be unreachable in
        #: principle — raise scoreboard_cap/max_depth to decide.
        self.exploration_exhaustive = exploration_exhaustive
        self.target_state_coverage, self.target_transition_coverage = targets
        self.rounds = rounds
        self.traces_executed = traces_executed
        self.ticks_executed = ticks_executed
        self.directed_traces = directed_traces
        self.corpus = corpus
        self.budget = budget

    @property
    def state_coverage(self) -> float:
        return self.coverage.state_coverage()

    @property
    def transition_coverage(self) -> float:
        return self.coverage.transition_coverage()

    def to_json(self) -> Dict[str, object]:
        """A JSON-serialisable summary (corpus traces elided to stats)."""
        return {
            "monitor": self.name,
            "reached": self.reached,
            "state_coverage": round(self.state_coverage, 4),
            "transition_coverage": round(self.transition_coverage, 4),
            "target_state_coverage": self.target_state_coverage,
            "target_transition_coverage": self.target_transition_coverage,
            "rounds": self.rounds,
            "budget": self.budget,
            "exploration_exhaustive": self.exploration_exhaustive,
            "traces_executed": self.traces_executed,
            "ticks_executed": self.ticks_executed,
            "directed_traces": self.directed_traces,
            "excluded_states": self.coverage.excluded_states,
            "excluded_transition_count":
                len(self.coverage.excluded_transitions),
            "uncovered_states": self.coverage.uncovered_states(),
            "uncovered_transition_count":
                len(self.coverage.uncovered_transitions()),
            "corpus": [
                {
                    "label": entry.label,
                    "kind": entry.kind,
                    "ticks": entry.trace.length,
                    "detections": list(entry.detections),
                }
                for entry in self.corpus
            ],
        }

    def export_vcd(self, directory, clock: str = "clk") -> List[str]:
        """Write the corpus as VCD dumps (one file per trace).

        Returns the written paths.  Empty traces are skipped — a VCD
        dump of zero ticks has no meaning for a waveform viewer.
        """
        os.makedirs(directory, exist_ok=True)
        written: List[str] = []
        for index, entry in enumerate(self.corpus):
            if entry.trace.length == 0:
                continue
            path = os.path.join(
                directory, f"{self.name}_{index:04d}_{entry.kind}.vcd"
            )
            with open(path, "w") as stream:
                stream.write(trace_to_vcd(entry.trace, clock=clock))
            written.append(path)
        return written

    def export_columnar(self, path,
                        alphabet: Optional[Sequence[str]] = None) -> str:
        """Write the whole corpus as one pre-encoded ``.rtrc`` file.

        The columnar twin of :meth:`export_vcd`: one mask stream per
        corpus trace (empty traces included — their lengths are part
        of the record), encoded against ``alphabet`` (default: the
        union of the corpus alphabets, which for a campaign is the
        monitor's own).  Re-checking the corpus then reads mask arrays
        straight off disk — no VCD round-trip, no re-encoding.
        """
        from repro.trace.columnar import ColumnarTraceSet

        traces = [entry.trace for entry in self.corpus]
        columns = ColumnarTraceSet.from_traces(
            traces, alphabet=alphabet, meta={
                "campaign": self.name,
                "labels": [entry.label for entry in self.corpus],
                "kinds": [entry.kind for entry in self.corpus],
                "detections": [
                    list(entry.detections) for entry in self.corpus
                ],
            },
        )
        return columns.save(path)

    def __repr__(self):
        return (
            f"CampaignReport({self.name!r}, reached={self.reached}, "
            f"states={self.state_coverage:.0%}, "
            f"transitions={self.transition_coverage:.0%}, "
            f"traces={self.traces_executed})"
        )


class CoverageCampaign:
    """Drive a monitor's state/transition coverage to closure.

    ``spec`` may be a chart (an :class:`~repro.cesc.ast.SCESC` or
    single-leaf :class:`~repro.cesc.charts.Chart`) — the monitor is
    synthesized with :func:`~repro.synthesis.tr.tr_compiled` and seeds
    come from a :class:`~repro.semantics.generator.TraceGenerator` —
    or a ready :class:`~repro.monitor.automaton.Monitor` /
    :class:`~repro.runtime.compiled.CompiledMonitor` (seeds then fall
    back to directed noise over the monitor's own alphabet).

    ``jobs`` > 1 executes batches through
    :func:`~repro.trace.shard.run_sharded` worker processes;
    the default stays in-process through
    :func:`~repro.runtime.compiled.run_many`.
    """

    def __init__(self, spec, monitor=None, seed: int = 0, jobs: int = 1,
                 mp_context: Optional[str] = None,
                 oversubscribe: bool = False,
                 noise_density: float = 0.3,
                 scoreboard_cap: int = 8,
                 max_depth: Optional[int] = None):
        self._generator: Optional[TraceGenerator] = None
        if isinstance(spec, (Monitor, CompiledMonitor)):
            if monitor is not None:
                raise CampaignError(
                    "pass either a chart with an optional monitor, or a "
                    "monitor alone"
                )
            self._monitor = spec
        else:
            chart = as_chart(spec) if not isinstance(spec, Chart) else spec
            self._generator = TraceGenerator(
                chart, seed=seed, noise_density=noise_density
            )
            if monitor is None:
                leaves = chart.leaves()
                if len(leaves) != 1:
                    raise CampaignError(
                        "campaigns over composite charts need an explicit "
                        "monitor (banks are not a single automaton)"
                    )
                monitor = tr_compiled(leaves[0])
            self._monitor = monitor
        self._seed = seed
        self._noise_density = noise_density
        self._jobs = jobs
        self._mp_context = mp_context
        self._oversubscribe = oversubscribe
        self._synthesizer = StimulusSynthesizer(
            self._monitor, scoreboard_cap=scoreboard_cap, max_depth=max_depth
        )

    @property
    def monitor(self):
        return self._monitor

    @property
    def synthesizer(self) -> StimulusSynthesizer:
        return self._synthesizer

    # -- execution --------------------------------------------------------
    def _execute(self, traces: Sequence[Trace]):
        # run_sharded owns the jobs<=1 fallback (it degrades to
        # run_many with identical results).
        return run_sharded(
            self._monitor, traces, jobs=self._jobs,
            mp_context=self._mp_context, record_transitions=True,
            oversubscribe=self._oversubscribe,
        )

    def _seed_traces(self, count: int) -> List[Trace]:
        if count <= 0:
            return []
        if self._generator is not None:
            return self._generator.seed_corpus(count)
        # Monitor-only campaigns: seeded noise over the monitor's own
        # alphabet (no chart means no scenario window to embed).
        import random

        rng = random.Random(self._seed)
        density = self._noise_density
        order = tuple(sorted(self._monitor.alphabet))
        traces = []
        for _ in range(count):
            traces.append(Trace(
                [
                    Valuation({s for s in order if rng.random() < density},
                              order)
                    for _ in range(8)
                ],
                order,
            ))
        return traces

    # -- the closure loop --------------------------------------------------
    def run(self, target_state_coverage: float = 1.0,
            target_transition_coverage: float = 1.0,
            budget: int = 256, seed_traces: int = 12,
            directed_per_round: int = 16,
            max_rounds: int = 64) -> CampaignReport:
        """Seed, then target never-taken edges until closure or budget.

        ``budget`` bounds the *total* number of traces executed (seed
        plus directed).  The loop stops early when the coverage targets
        are met, when the budget is spent, or when no open target can
        be synthesized any more (the report then shows
        ``reached=False`` and what stayed open).
        """
        if budget <= 0:
            raise CampaignError(f"budget must be positive (got {budget})")
        coverage = MonitorCoverage(self._monitor)
        coverage.exclude_states(self._synthesizer.unreachable_states())
        coverage.exclude_transitions(
            self._synthesizer.unreachable_transitions()
        )
        corpus: List[CorpusEntry] = []
        executed = 0
        ticks = 0
        directed_count = 0
        rounds = 0

        def met() -> bool:
            return (
                coverage.state_coverage() >= target_state_coverage
                and coverage.transition_coverage()
                >= target_transition_coverage
            )

        def fold(traces, labels, kinds, predicted=None):
            nonlocal executed, ticks
            results = self._execute(traces)
            for index, result in enumerate(results):
                coverage.record_result(result)
                executed += 1
                ticks += result.ticks
                if predicted is not None and (
                    list(result.detections) != list(predicted[index])
                ):
                    raise CampaignError(
                        f"directed trace {labels[index]!r} predicted "
                        f"detections {list(predicted[index])} but execution "
                        f"observed {result.detections} — execution backend "
                        f"disagrees with the automaton walk"
                    )
                corpus.append(CorpusEntry(
                    labels[index], kinds[index], traces[index],
                    tuple(result.detections),
                ))

        seeds = self._seed_traces(min(seed_traces, budget))
        if seeds:
            fold(seeds, [f"seed[{i}]" for i in range(len(seeds))],
                 ["seed"] * len(seeds))

        while not met() and executed < budget and rounds < max_rounds:
            rounds += 1
            worklist = coverage.never_taken()
            directed: List[DirectedTrace] = []
            for transition in worklist["transitions"]:
                if len(directed) >= directed_per_round:
                    break
                witness = self._synthesizer.trace_through(transition)
                if witness is not None:
                    directed.append(witness)
            if len(directed) < directed_per_round:
                for state in worklist["states"]:
                    if len(directed) >= directed_per_round:
                        break
                    witness = self._synthesizer.trace_to_state(state)
                    if witness is not None and witness.trace.length > 0:
                        directed.append(witness)
            directed = directed[:max(0, budget - executed)]
            if not directed:
                break
            directed_count += len(directed)
            fold(
                [d.trace for d in directed],
                [d.label for d in directed],
                [d.kind for d in directed],
                predicted=[d.predicted_detections for d in directed],
            )

        return CampaignReport(
            name=self._monitor.name,
            reached=met(),
            coverage=coverage,
            targets=(target_state_coverage, target_transition_coverage),
            rounds=rounds,
            traces_executed=executed,
            ticks_executed=ticks,
            directed_traces=directed_count,
            corpus=corpus,
            budget=budget,
            exploration_exhaustive=(
                self._synthesizer.exploration_exhaustive()
            ),
        )

