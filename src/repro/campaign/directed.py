"""Directed stimulus synthesis: walking monitor automata into traces.

Random generation (:class:`~repro.semantics.generator.TraceGenerator`)
covers the scenario spine quickly but leaves rarely-enabled edges —
``Chk_evt`` branches, specific near-miss orderings — never taken.  The
:class:`StimulusSynthesizer` instead *walks the automaton*: breadth-
first search over monitor configurations ``(state, scoreboard)``,
where every edge of the search is a guard solved into a concrete
:class:`~repro.logic.valuation.Valuation` — by
:func:`~repro.logic.sat.satisfying_valuation` for interpreted
:class:`~repro.monitor.automaton.Monitor` guards, by direct
``(state, mask)`` table lookup for
:class:`~repro.runtime.compiled.CompiledMonitor` dispatch tables.

One BFS pass (memoized) yields shortest witnesses for everything at
once: the shortest accepting trace, a shortest near-miss violating
trace, and a shortest trace reaching any named state or taking any
named transition — the worklist a
:class:`~repro.campaign.CoverageCampaign` drives to closure.

The scoreboard half of a configuration is a counter map capped at
``scoreboard_cap`` (the multiset never needs unbounded counts for
presence checks as long as the cap exceeds the deepest add-pipeline,
e.g. 4 outstanding commands in the OCP burst monitor).  Because the
cap is an abstraction, every synthesized trace is *replayed* through a
real engine before being returned: the replay must take exactly the
planned transitions, so predicted detection ticks are exact by
construction, never an artifact of the search abstraction.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import CampaignError, ScoreboardError
from repro.logic.expr import scoreboard_checks_of
from repro.logic.sat import satisfying_valuation
from repro.logic.valuation import Valuation
from repro.monitor.automaton import AddEvt, DelEvt, Monitor, Transition
from repro.monitor.engine import MonitorEngine
from repro.monitor.scoreboard import Scoreboard
from repro.runtime.compiled import CompiledEngine, CompiledMonitor
from repro.semantics.run import Trace

__all__ = ["DirectedTrace", "StimulusSynthesizer"]

#: Scoreboard abstraction: sorted ((event, count), ...) with counts > 0.
_SbKey = Tuple[Tuple[str, int], ...]
_Config = Tuple[int, _SbKey]

#: One BFS step: the input consumed and the transition it fires.
_Step = Tuple[Valuation, Transition]


class DirectedTrace:
    """A synthesized trace together with the run it provably produces.

    ``path`` is the exact transition sequence the monitor takes on
    ``trace`` (verified by replay at construction time) and
    ``predicted_detections`` the ticks at which the final state is
    entered — the contract every execution backend must reproduce.
    """

    __slots__ = ("trace", "path", "kind", "predicted_detections", "label")

    def __init__(self, trace: Trace, path: Tuple[Transition, ...],
                 kind: str, predicted_detections: Tuple[int, ...],
                 label: str):
        self.trace = trace
        self.path = path
        self.kind = kind
        self.predicted_detections = predicted_detections
        self.label = label

    @property
    def accepting(self) -> bool:
        return bool(self.predicted_detections)

    def __repr__(self):
        return (
            f"DirectedTrace({self.label!r}, kind={self.kind!r}, "
            f"ticks={self.trace.length}, "
            f"predicted={list(self.predicted_detections)})"
        )


class _Reachability:
    """Everything one exhaustive BFS pass learned about the automaton."""

    def __init__(self):
        #: config -> (parent config, step that discovered it); the
        #: initial config maps to None.
        self.parents: Dict[_Config, Optional[Tuple[_Config, _Step]]] = {}
        #: first (shortest) occurrence of each transition:
        #: transition -> (config it fires from, the step).
        self.first_edge: Dict[Transition, Tuple[_Config, _Step]] = {}
        #: first config observed in each state.
        self.first_state: Dict[int, _Config] = {}
        self.states: Set[int] = set()
        self.transitions: Set[Transition] = set()
        self.truncated = False


class StimulusSynthesizer:
    """Shortest directed traces through one monitor automaton.

    Works on both monitor forms: an interpreted
    :class:`~repro.monitor.automaton.Monitor` (guards solved by SAT)
    or a :class:`~repro.runtime.compiled.CompiledMonitor` (cells read
    off the dispatch table).  All queries share one memoized
    reachability pass; targets the pass proves unreachable come back
    as ``None``.
    """

    def __init__(self, monitor, max_depth: Optional[int] = None,
                 scoreboard_cap: int = 8, max_configs: int = 50_000):
        self._monitor = monitor
        self._is_compiled = isinstance(monitor, CompiledMonitor)
        if self._is_compiled:
            self._order: Tuple[str, ...] = monitor.codec.symbols
        else:
            self._order = tuple(sorted(monitor.alphabet))
        self._alphabet = frozenset(self._order)
        self._max_depth = (
            max_depth if max_depth is not None
            else max(16, 4 * monitor.n_states)
        )
        self._cap = scoreboard_cap
        self._max_configs = max_configs
        self._solve_cache: Dict[Tuple, Optional[Valuation]] = {}
        self._reach: Optional[_Reachability] = None
        if self._is_compiled:
            self._rows = self._index_table(monitor)

    # -- public queries --------------------------------------------------
    @property
    def monitor(self):
        return self._monitor

    def reachable_states(self) -> Set[int]:
        return set(self._explore().states)

    def reachable_transitions(self) -> Set[Transition]:
        return set(self._explore().transitions)

    def exploration_exhaustive(self) -> bool:
        """Did the search reach a fixpoint within its bounds?

        Only an exhaustive pass turns "not found" into "proven
        unreachable"; a truncated one (depth bound hit, config limit
        hit) merely failed to find a witness.  Consumers that *write
        off* targets — coverage exclusions — must check this first.
        """
        return not self._explore().truncated

    def unreachable_states(self) -> List[int]:
        """States no run can visit (empty when exploration truncated)."""
        reach = self._explore()
        if reach.truncated:
            return []
        return sorted(set(self._monitor.states) - reach.states)

    def unreachable_transitions(self) -> List[Transition]:
        """Edges no run can take (empty when exploration truncated)."""
        reach = self._explore()
        if reach.truncated:
            return []
        return [t for t in self._monitor.transitions
                if t not in reach.transitions]

    def accepting_trace(self) -> Optional[DirectedTrace]:
        """The shortest trace entering the final state (detection)."""
        reach = self._explore()
        final = self._monitor.final
        best: Optional[Tuple[int, _Config, _Step]] = None
        for transition, (config, step) in reach.first_edge.items():
            if transition.target != final:
                continue
            length = self._depth_of(config, reach) + 1
            if best is None or length < best[0]:
                best = (length, config, step)
        if best is None:
            return None
        steps = self._path_to(best[1], reach) + [best[2]]
        return self._finish(steps, "accepting", "shortest accepting path")

    def violating_trace(self) -> Optional[DirectedTrace]:
        """The shortest near-miss: on track for a detection, derailed
        at the last tick.

        Follows the shortest accepting path up to its final step, then
        takes an enabled edge that does *not* enter the final state —
        the monitor observes the scenario failing at the exact tick it
        should have completed.  ``None`` when every enabled edge at
        that point detects (no near-miss exists at this depth).
        """
        final = self._monitor.final
        accepting = self.accepting_trace()
        if accepting is None:
            return None
        steps = [
            (valuation, transition) for valuation, transition in zip(
                accepting.trace, accepting.path
            )
        ]
        prefix = steps[:-1]
        config = self.config_after([t for _, t in prefix])
        for valuation, transition, _ in self._successors(config):
            if transition.target == final:
                continue
            return self._finish(
                prefix + [(valuation, transition)], "violating",
                "near-miss at final step",
            )
        return None

    def derailing_valuation(
        self, prefix: Sequence[Transition], planned: Transition
    ) -> Optional[Valuation]:
        """An input that fires something *other* than ``planned``.

        ``prefix`` is the transition path leading up to the decision
        point.  Completeness guarantees alternatives exist for most
        configurations; an edge whose target differs from the planned
        one is preferred (it provably derails the run, not just the
        edge).  Fault campaigns splice the result into an accepting
        trace to manufacture a violation at an exact tick.
        """
        config = self.config_after(prefix)
        fallback: Optional[Valuation] = None
        for valuation, transition, _ in self._successors(config):
            if transition == planned:
                continue
            if transition.target != planned.target:
                return valuation
            if fallback is None:
                fallback = valuation
        return fallback

    def trace_to_state(self, state: int) -> Optional[DirectedTrace]:
        """The shortest trace whose run visits ``state``."""
        if not (0 <= state < self._monitor.n_states):
            raise CampaignError(
                f"state {state} outside 0..{self._monitor.n_states - 1}"
            )
        reach = self._explore()
        config = reach.first_state.get(state)
        if config is None:
            return None
        steps = self._path_to(config, reach)
        return self._finish(steps, "state", f"reach state {state}")

    def trace_through(self, transition: Transition) -> Optional[DirectedTrace]:
        """The shortest trace whose run takes ``transition``."""
        reach = self._explore()
        hit = reach.first_edge.get(transition)
        if hit is None:
            return None
        config, step = hit
        steps = self._path_to(config, reach) + [step]
        return self._finish(
            steps, "transition",
            f"take {transition.source}->{transition.target}",
        )

    # -- search ----------------------------------------------------------
    def _explore(self) -> _Reachability:
        """One exhaustive BFS pass over configurations (memoized)."""
        if self._reach is not None:
            return self._reach
        reach = _Reachability()
        initial: _Config = (self._monitor.initial, ())
        reach.parents[initial] = None
        reach.first_state[self._monitor.initial] = initial
        reach.states.add(self._monitor.initial)
        frontier: List[_Config] = [initial]
        depth = 0
        while frontier and depth < self._max_depth:
            next_frontier: List[_Config] = []
            for config in frontier:
                for valuation, transition, successor in self._successors(
                    config
                ):
                    if transition not in reach.first_edge:
                        reach.first_edge[transition] = (
                            config, (valuation, transition)
                        )
                        reach.transitions.add(transition)
                    if successor in reach.parents:
                        continue
                    if len(reach.parents) >= self._max_configs:
                        reach.truncated = True
                        continue
                    reach.parents[successor] = (
                        config, (valuation, transition)
                    )
                    state = successor[0]
                    if state not in reach.first_state:
                        reach.first_state[state] = successor
                        reach.states.add(state)
                    next_frontier.append(successor)
            frontier = next_frontier
            depth += 1
        if frontier:
            reach.truncated = True
        self._reach = reach
        return reach

    def _successors(
        self, config: _Config
    ) -> Iterable[Tuple[Valuation, Transition, _Config]]:
        """Enabled edges of ``config``: (input, transition, successor).

        At most one representative input per distinct transition — the
        automaton is deterministic, so any witness valuation is as good
        as any other for reaching the edge.
        """
        state, sb_key = config
        counts = dict(sb_key)
        edges = (
            self._compiled_edges(state, counts) if self._is_compiled
            else self._interpreted_edges(state, counts)
        )
        for valuation, transition in edges:
            successor_counts = self._apply_actions(counts, transition.actions)
            if successor_counts is None:
                # A Del_evt below zero: the strict scoreboard would
                # raise on replay, so the edge is not usable here.
                continue
            yield valuation, transition, (transition.target,
                                          tuple(sorted(
                                              successor_counts.items())))

    def _interpreted_edges(
        self, state: int, counts: Dict[str, int]
    ) -> Iterable[_Step]:
        for transition in self._monitor.transitions_from(state):
            checks = scoreboard_checks_of(transition.guard)
            chk_true = frozenset(
                e for e in checks if counts.get(e, 0) > 0
            )
            chk_false = frozenset(checks) - chk_true
            key = (transition.guard, chk_true, chk_false)
            if key in self._solve_cache:
                valuation = self._solve_cache[key]
            else:
                valuation = satisfying_valuation(
                    [transition.guard], self._order,
                    chk_true=chk_true, chk_false=chk_false,
                )
                self._solve_cache[key] = valuation
            if valuation is not None:
                yield valuation, transition

    def _compiled_edges(
        self, state: int, counts: Dict[str, int]
    ) -> Iterable[_Step]:
        plain, ladders = self._rows[state]
        seen: Set[Transition] = set()
        for mask, transition in plain:
            if transition not in seen:
                seen.add(transition)
                yield self._monitor.codec.decode(mask), transition
        if ladders:
            scoreboard = Scoreboard()
            scoreboard.restore(counts)
            for mask in ladders:
                transition = self._monitor.cell(state, mask)
                if isinstance(transition, tuple):
                    transition = self._resolve_ladder(
                        transition, mask, scoreboard
                    )
                if transition is not None and transition not in seen:
                    seen.add(transition)
                    yield self._monitor.codec.decode(mask), transition

    def _resolve_ladder(self, rungs, mask: int,
                        scoreboard: Scoreboard) -> Optional[Transition]:
        for check, transition in rungs:
            if check is None or check(mask, scoreboard):
                return transition
        return None

    @staticmethod
    def _index_table(monitor: CompiledMonitor):
        """Per state: unconditional (mask, transition) representatives
        plus the masks holding scoreboard-dependent ladders."""
        rows = []
        for state in monitor.states:
            plain: List[Tuple[int, Transition]] = []
            plain_seen: Set[Transition] = set()
            ladders: List[int] = []
            for mask in monitor.codec.all_masks():
                cell = monitor.cell(state, mask)
                if cell is None:
                    continue
                if isinstance(cell, tuple):
                    ladders.append(mask)
                elif cell not in plain_seen:
                    plain_seen.add(cell)
                    plain.append((mask, cell))
            rows.append((plain, ladders))
        return rows

    def _apply_actions(self, counts: Dict[str, int],
                       actions: Sequence) -> Optional[Dict[str, int]]:
        result = dict(counts)
        for action in actions:
            if isinstance(action, AddEvt):
                for event in action.events:
                    result[event] = min(result.get(event, 0) + 1, self._cap)
            elif isinstance(action, DelEvt):
                for event in action.events:
                    current = result.get(event, 0)
                    if current <= 0:
                        return None
                    if current == 1:
                        del result[event]
                    else:
                        result[event] = current - 1
        return result

    # -- path reconstruction ---------------------------------------------
    def _path_to(self, config: _Config, reach: _Reachability) -> List[_Step]:
        steps: List[_Step] = []
        cursor = config
        while True:
            parent = reach.parents[cursor]
            if parent is None:
                break
            cursor, step = parent
            steps.append(step)
        steps.reverse()
        return steps

    def _depth_of(self, config: _Config, reach: _Reachability) -> int:
        depth = 0
        cursor = config
        while reach.parents[cursor] is not None:
            cursor = reach.parents[cursor][0]
            depth += 1
        return depth

    def config_after(self, transitions: Sequence[Transition]) -> _Config:
        """The ``(state, scoreboard)`` configuration a path ends in."""
        config: _Config = (self._monitor.initial, ())
        for transition in transitions:
            counts = self._apply_actions(dict(config[1]), transition.actions)
            if counts is None:
                raise CampaignError(
                    f"monitor {self._monitor.name!r}: path deletes an "
                    f"event the scoreboard does not hold"
                )
            config = (transition.target, tuple(sorted(counts.items())))
        return config

    # -- realisation -------------------------------------------------------
    def _finish(self, steps: List[_Step], kind: str,
                label: str) -> DirectedTrace:
        """Materialise a step list and verify it by replay.

        The replay (through the real engine for this monitor form) must
        take exactly the planned transitions; the scoreboard cap is an
        abstraction, so a divergence means the cap was too small for
        this automaton — surfaced as an error, never as a silently
        wrong prediction.
        """
        trace = Trace([valuation for valuation, _ in steps], self._order)
        planned = [transition for _, transition in steps]
        engine = (
            CompiledEngine(self._monitor) if self._is_compiled
            else MonitorEngine(self._monitor)
        )
        try:
            engine.feed(trace)
        except ScoreboardError as error:
            raise CampaignError(
                f"monitor {self._monitor.name!r}: synthesized path is not "
                f"replayable ({error}); raise scoreboard_cap"
            )
        if engine.transition_log != planned:
            raise CampaignError(
                f"monitor {self._monitor.name!r}: replay diverged from the "
                f"synthesized path; raise scoreboard_cap "
                f"(cap={self._cap})"
            )
        return DirectedTrace(
            trace, tuple(planned), kind,
            tuple(engine.result().detections), label,
        )
