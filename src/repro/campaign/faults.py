"""Fault-mutation campaigns: provoke violations at exact ticks.

Random fault injection (:class:`~repro.protocols.faults.FaultCampaign`)
answers "does the monitor notice *something*"; a mutation campaign
answers the sharper question "does the monitor notice *this* fault *at
this tick*".  Starting from a directed accepting trace (every tick of
which is a known transition of the automaton), each trial mutates one
tick — either the targeted way, splicing in a
:meth:`~repro.campaign.directed.StimulusSynthesizer.derailing_valuation`
via :func:`~repro.protocols.faults.replace_tick`, or a random
:class:`~repro.protocols.faults.FaultCampaign` single-fault mutation —
and *predicts* the mutant's detection ticks by replaying it through
the reference engine at build time.

:meth:`FaultMutationCampaign.run` then executes all mutants through
the batch backend (:func:`~repro.runtime.compiled.run_many`, or
:func:`~repro.trace.shard.run_sharded` with ``jobs``) and checks every
observation against its prediction — a mismatch means the execution
backend disagrees with the reference semantics and is reported as
such, not averaged into a detection rate.  A trial is *killed* when
the baseline detection tick disappeared from the mutant's run.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.campaign.directed import DirectedTrace, StimulusSynthesizer
from repro.errors import CampaignError, ScoreboardError
from repro.monitor.engine import MonitorEngine
from repro.protocols.faults import FaultCampaign, replace_tick
from repro.runtime.compiled import CompiledEngine, CompiledMonitor
from repro.semantics.run import Trace
from repro.trace.shard import run_sharded

__all__ = ["FaultTrial", "FaultReport", "FaultMutationCampaign"]


class FaultTrial:
    """One mutated trace with its build-time predicted outcome."""

    __slots__ = ("label", "kind", "tick", "trace",
                 "baseline_detections", "predicted_detections")

    def __init__(self, label: str, kind: str, tick: Optional[int],
                 trace: Trace, baseline_detections: Tuple[int, ...],
                 predicted_detections: Tuple[int, ...]):
        self.label = label
        self.kind = kind
        self.tick = tick
        self.trace = trace
        self.baseline_detections = baseline_detections
        self.predicted_detections = predicted_detections

    @property
    def killed(self) -> bool:
        """Did the fault destroy the baseline detection?

        True when the detection tick the un-mutated trace produces is
        absent from the mutant's predicted run.
        """
        return bool(self.baseline_detections) and (
            self.baseline_detections[-1] not in self.predicted_detections
        )

    def __repr__(self):
        return (
            f"FaultTrial({self.label!r}, kind={self.kind!r}, "
            f"tick={self.tick}, killed={self.killed})"
        )


class FaultReport:
    """Executed campaign: kill statistics plus any backend mismatches."""

    def __init__(self, trials: Sequence[FaultTrial],
                 observed: Sequence[Tuple[int, ...]]):
        self.trials = list(trials)
        self.observed = list(observed)
        self.mismatches: List[str] = []
        for trial, seen in zip(self.trials, self.observed):
            if list(seen) != list(trial.predicted_detections):
                self.mismatches.append(
                    f"{trial.label}: predicted "
                    f"{list(trial.predicted_detections)}, observed "
                    f"{list(seen)}"
                )

    @property
    def n_trials(self) -> int:
        return len(self.trials)

    @property
    def n_killed(self) -> int:
        return sum(1 for trial in self.trials if trial.killed)

    @property
    def kill_rate(self) -> float:
        if not self.trials:
            return 0.0
        return self.n_killed / len(self.trials)

    @property
    def ok(self) -> bool:
        """Every observation matched its build-time prediction."""
        return not self.mismatches

    def to_json(self):
        return {
            "trials": self.n_trials,
            "killed": self.n_killed,
            "kill_rate": round(self.kill_rate, 4),
            "mismatches": list(self.mismatches),
        }

    def __repr__(self):
        return (
            f"FaultReport(trials={self.n_trials}, killed={self.n_killed}, "
            f"mismatches={len(self.mismatches)})"
        )


class FaultMutationCampaign:
    """Mutate a directed accepting trace, one predicted fault at a time."""

    def __init__(self, monitor, seed: int = 0,
                 synthesizer: Optional[StimulusSynthesizer] = None,
                 scoreboard_cap: int = 8):
        self._monitor = monitor
        self._is_compiled = isinstance(monitor, CompiledMonitor)
        self._synthesizer = synthesizer or StimulusSynthesizer(
            monitor, scoreboard_cap=scoreboard_cap
        )
        self._seed = seed
        self._base: Optional[DirectedTrace] = None

    @property
    def base(self) -> DirectedTrace:
        """The directed accepting trace every mutation starts from."""
        if self._base is None:
            base = self._synthesizer.accepting_trace()
            if base is None:
                raise CampaignError(
                    f"monitor {self._monitor.name!r} has no accepting "
                    f"trace; nothing to mutate"
                )
            self._base = base
        return self._base

    def _replay(self, trace: Trace) -> Optional[Tuple[int, ...]]:
        """Reference detections for ``trace`` (None: not replayable)."""
        engine = (
            CompiledEngine(self._monitor) if self._is_compiled
            else MonitorEngine(self._monitor)
        )
        try:
            engine.feed(trace)
        except ScoreboardError:
            return None
        return tuple(engine.result().detections)

    def build(self, random_mutations: int = 8) -> List[FaultTrial]:
        """All targeted per-tick trials plus ``random_mutations`` extras.

        Targeted trials derail tick ``t`` of the accepting path with a
        valuation that provably fires a different transition; random
        trials draw from the classic drop/insert/delay/swap fault
        model.  Each trial's expected detections come from a reference
        replay at build time; trials whose mutation makes the trace
        unreplayable (strict-scoreboard aborts) are skipped.
        """
        base = self.base
        baseline = base.predicted_detections
        trials: List[FaultTrial] = []
        path = list(base.path)
        for tick in range(len(path)):
            valuation = self._synthesizer.derailing_valuation(
                path[:tick], path[tick]
            )
            if valuation is None:
                continue
            mutated = replace_tick(base.trace, tick, valuation)
            predicted = self._replay(mutated)
            if predicted is None:
                continue
            trials.append(FaultTrial(
                label=f"derail@{tick}", kind="targeted", tick=tick,
                trace=mutated, baseline_detections=baseline,
                predicted_detections=predicted,
            ))
        if random_mutations > 0 and base.trace.length >= 2:
            campaign = FaultCampaign(
                base.trace, sorted(base.trace.alphabet), seed=self._seed
            )
            for index, mutated in enumerate(
                campaign.mutations(random_mutations)
            ):
                predicted = self._replay(mutated)
                if predicted is None:
                    continue
                trials.append(FaultTrial(
                    label=f"random[{index}]", kind="random", tick=None,
                    trace=mutated, baseline_detections=baseline,
                    predicted_detections=predicted,
                ))
        return trials

    def run(self, trials: Optional[Sequence[FaultTrial]] = None,
            jobs: int = 1, mp_context: Optional[str] = None,
            oversubscribe: bool = False,
            random_mutations: int = 8) -> FaultReport:
        """Execute the trials in a batch and report kills + mismatches."""
        if trials is None:
            trials = self.build(random_mutations=random_mutations)
        traces = [trial.trace for trial in trials]
        # run_sharded owns the jobs<=1 fallback (identical results).
        results = run_sharded(
            self._monitor, traces, jobs=jobs, mp_context=mp_context,
            oversubscribe=oversubscribe,
        )
        return FaultReport(
            trials, [tuple(result.detections) for result in results]
        )
