"""Coverage-directed test campaigns over synthesized monitors.

The campaign engine turns a monitor from a passive observer into a
test *oracle that writes its own tests*:

* :mod:`repro.campaign.directed` — graph search over the automaton
  synthesizing shortest accepting / violating / edge-targeting traces,
  each with exact predicted detection ticks;
* :mod:`repro.campaign.closure` — the coverage-closure loop: random
  seeds, then directed traces at every never-taken edge until
  state/transition coverage hits target or a budget expires;
* :mod:`repro.campaign.faults` — fault-mutation campaigns: one
  predicted violation per tick of the scenario spine, plus random
  single-fault mutants, executed in batches and checked against their
  predictions.

Exposed on the CLI as ``repro campaign``.
"""

from repro.campaign.closure import CampaignReport, CorpusEntry, CoverageCampaign
from repro.campaign.directed import DirectedTrace, StimulusSynthesizer
from repro.campaign.faults import FaultMutationCampaign, FaultReport, FaultTrial

__all__ = [
    "CampaignReport",
    "CorpusEntry",
    "CoverageCampaign",
    "DirectedTrace",
    "FaultMutationCampaign",
    "FaultReport",
    "FaultTrial",
    "StimulusSynthesizer",
]
