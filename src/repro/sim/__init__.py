"""Clocked (GALS) simulation substrate hosting protocol models + monitors.

The paper's monitors run inside a simulation environment (Figure 4).
This package is that substrate: a cycle-based, multi-clock discrete
"event" kernel with two-phase signal semantics, VCD waveform output,
and a testbench harness that samples signals into the valuation traces
monitors consume.

* :mod:`repro.sim.signal` — signals with staged writes and one-tick
  pulses (events);
* :mod:`repro.sim.kernel` — the simulator: clocks, leveled processes
  (sequential then combinational), global-time ordering of GALS ticks;
* :mod:`repro.sim.vcd` — VCD waveform writer;
* :mod:`repro.sim.testbench` — trace recording, online monitor/checker
  attachment, network hookup for multi-clock designs.
"""

from repro.sim.kernel import Simulator
from repro.sim.signal import Signal
from repro.sim.testbench import Testbench, TraceRecorder
from repro.sim.vcd import VcdWriter

__all__ = ["Signal", "Simulator", "Testbench", "TraceRecorder", "VcdWriter"]
