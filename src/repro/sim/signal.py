"""Signals: two-phase values with persistent levels and one-tick pulses.

Writers stage a value with :meth:`Signal.set` (persists until
overwritten) or :meth:`Signal.pulse` (auto-clears after one tick of the
owning clock domain); the kernel commits staged writes between process
levels.  Reading always returns the committed value, so process
ordering within a level cannot cause races.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.errors import SimulationError

__all__ = ["Signal"]

_UNSET = object()


class Signal:
    """A named value wire with staged (two-phase) writes.

    ``width`` is informational (used by the VCD writer); values are
    Python bools/ints.  Event-like signals are bools driven with
    :meth:`pulse`.
    """

    def __init__(self, name: str, init: Union[bool, int] = False,
                 width: int = 1):
        if not name:
            raise SimulationError("signal name must be non-empty")
        self.name = name
        self.width = int(width)
        self._value = init
        self._staged = _UNSET
        self._pulse_armed = False

    # -- reading -----------------------------------------------------------
    @property
    def value(self):
        """The committed value (what every reader sees this phase)."""
        return self._value

    def __bool__(self) -> bool:
        return bool(self._value)

    # -- writing -----------------------------------------------------------
    def set(self, value: Union[bool, int]) -> None:
        """Stage a persistent write (visible after the next commit)."""
        self._staged = value
        self._pulse_armed = False

    def pulse(self) -> None:
        """Stage a one-tick ``True``; auto-clears at the next tick."""
        self._staged = True
        self._pulse_armed = True

    def clear(self) -> None:
        self.set(False)

    # -- kernel hooks --------------------------------------------------------
    def commit(self) -> bool:
        """Apply the staged write; returns True if the value changed."""
        if self._staged is _UNSET:
            return False
        changed = self._staged != self._value
        self._value = self._staged
        self._staged = _UNSET
        return changed

    def expire_pulse(self) -> bool:
        """Drop a pulse that was not re-armed this tick.

        Called by the kernel at the *start* of each tick of the owning
        domain, before drivers run: a pulse driven last tick reads true
        during that tick only.
        """
        if self._pulse_armed and self._staged is _UNSET:
            self._pulse_armed = False
            if self._value:
                self._value = False
                return True
        return False

    def __repr__(self):
        return f"Signal({self.name}={self._value!r})"
