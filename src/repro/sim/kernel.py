"""The cycle-based multi-clock simulation kernel.

Execution model (per global instant, instants ordered by absolute
time, simultaneous clock ticks share one instant):

1. *pulse expiry* — event signals owned by a ticking domain drop
   pulses not re-armed;
2. *level 0* (sequential drivers) — processes read committed values
   and stage writes; writes commit when the level completes;
3. *level 1..k* (combinational responders) — may react to values
   committed by lower levels within the same instant (e.g. OCP's
   same-cycle ``SCmd_accept``); commit after each level;
4. *samplers* — observers (trace recorders, monitors, VCD) read the
   settled values of the instant.

A process is any callable ``fn(sim, tick_index)`` registered for a
clock at a level.  The kernel owns signals per clock domain so pulse
expiry follows the right clock in GALS setups.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Dict, List, Optional, Tuple

from repro.cesc.ast import Clock
from repro.errors import SimulationError
from repro.sim.signal import Signal

__all__ = ["Simulator"]

ProcessFn = Callable[["Simulator", int], None]
SamplerFn = Callable[["Simulator", int, Fraction], None]


class Simulator:
    """Multi-clock cycle simulator with leveled two-phase processes."""

    def __init__(self):
        self._clocks: Dict[str, Clock] = {}
        self._signals: Dict[str, Signal] = {}
        self._domain_of: Dict[str, str] = {}
        self._processes: Dict[str, List[Tuple[int, ProcessFn]]] = {}
        self._samplers: Dict[str, List[SamplerFn]] = {}
        self._tick_counts: Dict[str, int] = {}
        self._now: Fraction = Fraction(0)

    # -- construction ------------------------------------------------------
    def add_clock(self, clock: Clock) -> Clock:
        if clock.name in self._clocks:
            raise SimulationError(f"clock {clock.name!r} already registered")
        self._clocks[clock.name] = clock
        self._processes[clock.name] = []
        self._samplers[clock.name] = []
        self._tick_counts[clock.name] = 0
        return clock

    def signal(self, name: str, clock: Clock, init=False,
               width: int = 1) -> Signal:
        """Create a signal owned by ``clock``'s domain."""
        if name in self._signals:
            raise SimulationError(f"signal {name!r} already exists")
        if clock.name not in self._clocks:
            raise SimulationError(f"clock {clock.name!r} not registered")
        sig = Signal(name, init=init, width=width)
        self._signals[name] = sig
        self._domain_of[name] = clock.name
        return sig

    def get_signal(self, name: str) -> Signal:
        try:
            return self._signals[name]
        except KeyError:
            raise SimulationError(f"no signal named {name!r}")

    def add_process(self, clock: Clock, fn: ProcessFn, level: int = 0) -> None:
        """Register a driver at ``level`` (0 = sequential, >=1 reactive)."""
        if clock.name not in self._clocks:
            raise SimulationError(f"clock {clock.name!r} not registered")
        self._processes[clock.name].append((level, fn))

    def add_sampler(self, clock: Clock, fn: SamplerFn) -> None:
        """Register an observer called with settled values each tick."""
        if clock.name not in self._clocks:
            raise SimulationError(f"clock {clock.name!r} not registered")
        self._samplers[clock.name].append(fn)

    # -- state --------------------------------------------------------------
    @property
    def now(self) -> Fraction:
        return self._now

    def tick_count(self, clock: Clock) -> int:
        return self._tick_counts[clock.name]

    def clocks(self) -> List[Clock]:
        return list(self._clocks.values())

    # -- execution ------------------------------------------------------------
    def _domain_signals(self, clock_names: List[str]) -> List[Signal]:
        return [
            sig for name, sig in self._signals.items()
            if self._domain_of[name] in clock_names
        ]

    def _commit_domains(self, clock_names: List[str]) -> None:
        for sig in self._domain_signals(clock_names):
            sig.commit()

    def run_instant(self, time: Fraction, clock_names: List[str]) -> None:
        """Execute one global instant for the given ticking clocks."""
        self._now = time
        ticking = sorted(clock_names)
        for sig in self._domain_signals(ticking):
            sig.expire_pulse()

        levels = sorted(
            {level for name in ticking for level, _ in self._processes[name]}
        )
        for level in levels:
            for name in ticking:
                index = self._tick_counts[name]
                for process_level, fn in self._processes[name]:
                    if process_level == level:
                        fn(self, index)
            self._commit_domains(ticking)

        for name in ticking:
            index = self._tick_counts[name]
            for sampler in self._samplers[name]:
                sampler(self, index, time)
            self._tick_counts[name] = index + 1

    def run_until(self, horizon: Fraction) -> None:
        """Run every clock tick strictly before ``horizon`` in time order."""
        if not self._clocks:
            raise SimulationError("no clocks registered")
        schedule: Dict[Fraction, List[str]] = {}
        for name, clock in self._clocks.items():
            start = self._tick_counts[name]
            index = start
            while clock.tick_time(index) < horizon:
                schedule.setdefault(clock.tick_time(index), []).append(name)
                index += 1
        for time in sorted(schedule):
            if time < self._now:
                raise SimulationError(
                    f"instant {time} precedes current time {self._now}"
                )
            self.run_instant(time, schedule[time])

    def run_cycles(self, clock: Clock, cycles: int) -> None:
        """Run until ``clock`` has completed ``cycles`` more ticks."""
        target = self._tick_counts[clock.name] + cycles
        # Ticks strictly before the (target+1)-th tick time, i.e. the
        # next ``cycles`` ticks of this clock plus any other-domain
        # ticks falling in the same span.
        self.run_until(clock.tick_time(target))
