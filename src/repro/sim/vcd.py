"""VCD (Value Change Dump) waveform writer.

Standard four-state-free VCD output for the signals of a simulation —
loadable in GTKWave & co.  Fraction timestamps are scaled to integers
by the writer's ``timescale_denominator`` (the LCM of the clock period
denominators works well).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, TextIO, Tuple, Union

from repro.errors import SimulationError
from repro.sim.signal import Signal

__all__ = ["VcdWriter"]

_ID_CHARS = "".join(chr(c) for c in range(33, 127))


def _identifier(index: int) -> str:
    """Short VCD identifier for the ``index``-th signal."""
    if index < 0:
        raise SimulationError("negative signal index")
    digits = []
    index += 1
    while index:
        index, rem = divmod(index - 1, len(_ID_CHARS))
        digits.append(_ID_CHARS[rem])
    return "".join(digits)


class VcdWriter:
    """Accumulates value changes; render with :meth:`dump`."""

    def __init__(self, timescale: str = "1ns",
                 time_scale_factor: int = 1):
        self._timescale = timescale
        self._scale = int(time_scale_factor)
        self._signals: List[Signal] = []
        self._ids: Dict[str, str] = {}
        self._scopes: Dict[str, List[Signal]] = {}
        self._changes: List[Tuple[int, str, Union[bool, int], int]] = []
        self._last: Dict[str, Union[bool, int]] = {}

    def register(self, signal: Signal, scope: str = "top") -> None:
        if signal.name in self._ids:
            raise SimulationError(f"signal {signal.name!r} already registered")
        self._ids[signal.name] = _identifier(len(self._signals))
        self._signals.append(signal)
        self._scopes.setdefault(scope, []).append(signal)

    def sample(self, time: Fraction) -> None:
        """Record the current values of all registered signals."""
        scaled = int(time * self._scale)
        for signal in self._signals:
            value = signal.value
            if self._last.get(signal.name, _SENTINEL) != value:
                self._changes.append(
                    (scaled, self._ids[signal.name], value, signal.width)
                )
                self._last[signal.name] = value

    def dump(self) -> str:
        """Render the accumulated VCD text."""
        lines: List[str] = []
        lines.append(f"$timescale {self._timescale} $end")
        for scope, signals in self._scopes.items():
            lines.append(f"$scope module {scope} $end")
            for signal in signals:
                kind = "wire"
                lines.append(
                    f"$var {kind} {signal.width} {self._ids[signal.name]} "
                    f"{signal.name} $end"
                )
            lines.append("$upscope $end")
        lines.append("$enddefinitions $end")
        current_time: Optional[int] = None
        for time, identifier, value, width in self._changes:
            if time != current_time:
                lines.append(f"#{time}")
                current_time = time
            if width == 1:
                lines.append(f"{1 if value else 0}{identifier}")
            else:
                lines.append(f"b{int(value):b} {identifier}")
        return "\n".join(lines) + "\n"

    def write(self, stream: TextIO) -> None:
        stream.write(self.dump())


_SENTINEL = object()
