"""VCD (Value Change Dump) waveform writer.

Standard four-state-free VCD output for the signals of a simulation —
loadable in GTKWave & co.  Fraction timestamps are scaled to integers
by the writer's ``timescale_denominator`` (the LCM of the clock period
denominators works well).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, TextIO, Tuple, Union

from repro.errors import SimulationError
from repro.sim.signal import Signal

__all__ = ["VcdWriter"]

_ID_CHARS = "".join(chr(c) for c in range(33, 127))


def _identifier(index: int) -> str:
    """Short VCD identifier for the ``index``-th signal."""
    if index < 0:
        raise SimulationError("negative signal index")
    digits = []
    index += 1
    while index:
        index, rem = divmod(index - 1, len(_ID_CHARS))
        digits.append(_ID_CHARS[rem])
    return "".join(digits)


class VcdWriter:
    """Accumulates value changes; render with :meth:`dump`."""

    def __init__(self, timescale: str = "1ns",
                 time_scale_factor: int = 1):
        self._timescale = timescale
        self._scale = int(time_scale_factor)
        self._signals: List[Signal] = []
        self._ids: Dict[str, str] = {}
        self._scopes: Dict[str, List[Signal]] = {}
        self._changes: List[Tuple[int, str, Union[bool, int], int]] = []
        self._last: Dict[str, Union[bool, int]] = {}
        self._last_time: Optional[int] = None

    def register(self, signal: Signal, scope: str = "top") -> None:
        if signal.name in self._ids:
            raise SimulationError(f"signal {signal.name!r} already registered")
        self._ids[signal.name] = _identifier(len(self._signals))
        self._signals.append(signal)
        self._scopes.setdefault(scope, []).append(signal)

    def sample(self, time: Fraction) -> None:
        """Record the current values of all registered signals.

        ``time * time_scale_factor`` must land on an integer timestamp —
        VCD has no fractional times, and silently truncating would fold
        distinct sample instants together.  Pick a
        ``time_scale_factor`` that clears the denominators (the LCM of
        the clock period denominators works well).
        """
        exact = Fraction(time) * self._scale
        if exact.denominator != 1:
            raise SimulationError(
                f"sample time {time} * scale {self._scale} = {exact} is "
                f"not an integer VCD timestamp; raise time_scale_factor "
                f"to clear the denominator"
            )
        scaled = int(exact)
        if self._last_time is not None and scaled < self._last_time:
            raise SimulationError(
                f"sample time {scaled} precedes previous sample "
                f"{self._last_time}; VCD timestamps must not decrease"
            )
        self._last_time = scaled
        for signal in self._signals:
            value = signal.value
            if self._last.get(signal.name, _SENTINEL) != value:
                self._changes.append(
                    (scaled, self._ids[signal.name], value, signal.width)
                )
                self._last[signal.name] = value

    @staticmethod
    def _format_change(identifier: str, value: Union[bool, int],
                       width: int) -> str:
        if width == 1:
            return f"{1 if value else 0}{identifier}"
        return f"b{int(value):b} {identifier}"

    def dump(self) -> str:
        """Render the accumulated VCD text.

        The first sampled instant is emitted as a ``$dumpvars`` initial-
        value section (registered-but-never-sampled signals dump as
        ``x``), so viewers and :class:`~repro.trace.VcdReader` see every
        signal's value before the first change.  A trailing timestamp
        marker records the final sample instant even when nothing
        changed there, preserving the trace length.
        """
        lines: List[str] = []
        lines.append(f"$timescale {self._timescale} $end")
        for scope, signals in self._scopes.items():
            lines.append(f"$scope module {scope} $end")
            for signal in signals:
                kind = "wire"
                lines.append(
                    f"$var {kind} {signal.width} {self._ids[signal.name]} "
                    f"{signal.name} $end"
                )
            lines.append("$upscope $end")
        lines.append("$enddefinitions $end")
        changes = self._changes
        if changes:
            first_time = changes[0][0]
        elif self._last_time is not None:
            first_time = self._last_time
        else:
            first_time = 0
        lines.append(f"#{first_time}")
        lines.append("$dumpvars")
        index = 0
        dumped = set()
        while index < len(changes) and changes[index][0] == first_time:
            _, identifier, value, width = changes[index]
            lines.append(self._format_change(identifier, value, width))
            dumped.add(identifier)
            index += 1
        for signal in self._signals:
            identifier = self._ids[signal.name]
            if identifier not in dumped:
                lines.append(
                    f"x{identifier}" if signal.width == 1
                    else f"bx {identifier}"
                )
        lines.append("$end")
        current_time = first_time
        for time, identifier, value, width in changes[index:]:
            if time != current_time:
                lines.append(f"#{time}")
                current_time = time
            lines.append(self._format_change(identifier, value, width))
        if self._last_time is not None and self._last_time > current_time:
            lines.append(f"#{self._last_time}")
        return "\n".join(lines) + "\n"

    def write(self, stream: TextIO) -> None:
        stream.write(self.dump())


_SENTINEL = object()
