"""Testbench harness: signals -> valuation traces -> online monitors.

The glue of Figure 4's simulation environment: a
:class:`TraceRecorder` samples a chosen set of signals each tick of a
clock into the valuations monitors consume; :class:`Testbench` wires a
DUT (processes on the simulator), recorders, monitors/checkers/networks
and an optional VCD dump together.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cesc.ast import Clock
from repro.errors import SimulationError
from repro.logic.valuation import Valuation
from repro.monitor.automaton import Monitor
from repro.monitor.engine import MonitorEngine, MonitorResult
from repro.monitor.scoreboard import Scoreboard
from repro.semantics.run import GlobalRun, GlobalTick, Trace
from repro.sim.kernel import Simulator
from repro.sim.signal import Signal
from repro.sim.vcd import VcdWriter

__all__ = ["TraceRecorder", "Testbench"]


class TraceRecorder:
    """Samples named signals into per-tick valuations for one domain."""

    def __init__(self, symbol_signals: Mapping[str, Signal]):
        if not symbol_signals:
            raise SimulationError("trace recorder needs at least one signal")
        self._signals = dict(symbol_signals)
        self._alphabet = frozenset(self._signals)
        self._valuations: List[Valuation] = []
        self._times: List[Fraction] = []

    def sample(self, sim: Simulator, tick_index: int, time: Fraction) -> None:
        true = {
            symbol for symbol, signal in self._signals.items()
            if bool(signal.value)
        }
        self._valuations.append(Valuation(true, self._alphabet))
        self._times.append(time)

    @property
    def alphabet(self) -> frozenset:
        return self._alphabet

    def trace(self) -> Trace:
        return Trace(self._valuations, self._alphabet)

    def times(self) -> List[Fraction]:
        return list(self._times)

    def __len__(self) -> int:
        return len(self._valuations)


class Testbench:
    """A simulator plus recorders, online monitors and VCD capture."""

    __test__ = False  # not a pytest test class despite the name

    def __init__(self, simulator: Optional[Simulator] = None):
        self.sim = simulator if simulator is not None else Simulator()
        self._recorders: Dict[str, TraceRecorder] = {}
        self._engines: List[Tuple[str, MonitorEngine, TraceRecorder]] = []
        self._vcd: Optional[VcdWriter] = None

    # -- wiring ------------------------------------------------------------
    def record(self, clock: Clock,
               symbol_signals: Mapping[str, Signal],
               name: Optional[str] = None) -> TraceRecorder:
        """Attach a trace recorder to ``clock``; returns it."""
        recorder = TraceRecorder(symbol_signals)
        key = name or clock.name
        if key in self._recorders:
            raise SimulationError(f"recorder {key!r} already attached")
        self._recorders[key] = recorder
        self.sim.add_sampler(clock, recorder.sample)
        return recorder

    def attach_monitor(self, monitor: Monitor, clock: Clock,
                       symbol_signals: Mapping[str, Signal],
                       scoreboard: Optional[Scoreboard] = None,
                       ) -> MonitorEngine:
        """Run ``monitor`` online against sampled signals of ``clock``."""
        recorder = TraceRecorder(symbol_signals)
        engine = MonitorEngine(monitor, scoreboard=scoreboard)

        def sample_and_step(sim: Simulator, tick_index: int,
                            time: Fraction) -> None:
            recorder.sample(sim, tick_index, time)
            engine.step(recorder.trace()[len(recorder) - 1])

        self.sim.add_sampler(clock, sample_and_step)
        self._engines.append((monitor.name, engine, recorder))
        return engine

    def attach_network(self, network,
                       domain_signals: Mapping[str, Mapping[str, Signal]],
                       scoreboard: Optional[Scoreboard] = None):
        """Run a multi-clock monitor network online.

        ``domain_signals`` maps each local monitor's *component name*
        to its symbol->signal map.  Returns the shared scoreboard and
        the per-component engines.
        """
        shared = scoreboard if scoreboard is not None else Scoreboard()
        engines: Dict[str, MonitorEngine] = {}
        for local in network.locals:
            signals = domain_signals.get(local.component)
            if signals is None:
                raise SimulationError(
                    f"no signal mapping for component {local.component!r}"
                )
            engines[local.component] = self.attach_monitor(
                local.monitor, local.clock, signals, scoreboard=shared
            )
        return shared, engines

    def enable_vcd(self, signals: Sequence[Signal],
                   timescale_denominator: Optional[int] = None) -> VcdWriter:
        """Capture the given signals at every instant of every clock.

        ``timescale_denominator`` defaults to the LCM of the clock
        period/phase denominators, so fractional-period clocks land on
        integer VCD timestamps (the writer rejects anything else).
        """
        if timescale_denominator is None:
            timescale_denominator = 1
            for clock in self.sim.clocks():
                for value in (clock.period, clock.phase):
                    denominator = Fraction(value).denominator
                    timescale_denominator = (
                        timescale_denominator * denominator
                        // math.gcd(timescale_denominator, denominator)
                    )
        writer = VcdWriter(time_scale_factor=timescale_denominator)
        for signal in signals:
            writer.register(signal)
        self._vcd = writer
        for clock in self.sim.clocks():
            self.sim.add_sampler(
                clock,
                lambda sim, index, time: writer.sample(time),
            )
        return writer

    # -- running ---------------------------------------------------------
    def run(self, clock: Clock, cycles: int) -> None:
        self.sim.run_cycles(clock, cycles)

    def run_until(self, horizon: Fraction) -> None:
        self.sim.run_until(horizon)

    # -- results -----------------------------------------------------------
    def trace(self, name: str) -> Trace:
        return self._recorders[name].trace()

    def monitor_results(self) -> Dict[str, MonitorResult]:
        return {
            name: engine.result() for name, engine, _ in self._engines
        }

    def vcd_text(self) -> str:
        if self._vcd is None:
            raise SimulationError("VCD capture was not enabled")
        return self._vcd.dump()
