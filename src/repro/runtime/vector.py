"""Trace-parallel vectorized batch execution over flat integer tables.

:func:`~repro.runtime.compiled.run_many` steps one trace element per
Python iteration — fast per *monitor*, but the interpreter overhead is
paid per lane-tick.  This kernel flattens a
:class:`~repro.runtime.compiled.CompiledMonitor`'s check-free cells
into a single integer array ``next_state[state * 2^|Sigma| + mask]``
and advances **every trace of a batch in lock-step with one indexed
gather per tick** (NumPy fancy indexing), so the per-tick interpreter
cost is amortized over the whole batch width.

Escape-mask design
------------------
Cells the gather cannot resolve directly are *escapes*, encoded as
negative entries in the flat table:

* **check-ladder cells** — their move depends on the dynamic
  scoreboard;
* **action-carrying transitions** — they mutate the scoreboard, and
  the mutation must land in tick order;
* **missing cells** — an incomplete monitor raises exactly as the
  scalar engines do.

Predicated ladders
------------------
Every ladder and action cell lowers further, at table-build time, to a
**predicated plan**: each rung's condition is normalized to
disjunctive normal form over literal atoms, and every DNF term becomes
one row of four bitmasks — positive/negative ``Chk_evt`` literals over
a packed scoreboard-*presence* word, and positive/negative input
literals over the valuation mask.  At run time the escaped lanes of a
tick resolve **all at once**: the per-lane presence words and masks
are tested against the stacked ``(lane, rung)`` literal matrices, the
first passing rung per lane falls out of one ``argmax``, successor
states gather from a target matrix, and ``Add_evt``/``Del_evt``
scoreboard effects apply to the ``counts[event, lane]`` matrix as one
fancy-indexed delta add.  A companion *min-prefix* matrix detects
strict ``Del_evt`` under-runs, and a rung-difference matrix detects
the full-scan nondeterminism the scalar engines report — cells whose
first-match safety :func:`~repro.optimize.ladders.prove_first_match`
proves (and all ``ladder_exclusive`` monitors) skip that check
entirely.  Every anomaly check runs *before* any mutation, so a lane
that must raise **replays** through the scalar resolver on a
scoreboard reconstructed from its pre-tick counts column: the raised
error — message, trace-index order — is byte-identical to
``run_many``'s.  Caller-injected scoreboards are real objects with
observable mutations; those runs keep the scalar per-lane escape
path.  The differential suite
(``tests/runtime/test_vector_differential.py``) locks all of this
down, including a seeded 100%-ladder-density stress generator.

``VectorTable.escape_ratio`` reports the *static* lowering density
(cells outside the one-gather fast path); ``residual_ratio`` reports
what is left **after** predication — the cells whose lanes still drop
to per-lane scalar resolution (missing cells, or everything when some
cell resists predication).  The batch planner and the vector bench
read the residual, not the raw density.

NumPy is an **optional** dependency: when it is absent (or the
``REPRO_NO_NUMPY`` environment variable is set) the identical API runs
on a pure-Python flat ``array('i')`` fallback — loop-predicated: the
same literal-term plans are tested per lane with integer ops against a
per-lane counts list and presence word, no ``Scoreboard`` objects or
check-closure calls on the hot path.
"""

from __future__ import annotations

import os
from array import array
from typing import List, Optional, Sequence, Tuple, Union

from repro.cache import IdentityCache
from repro.errors import MonitorError
from repro.logic.expr import And, Const, Not, Or, ScoreboardCheck, _Ref
from repro.monitor.automaton import AddEvt, DelEvt, Monitor, Transition
from repro.monitor.engine import MonitorResult
from repro.monitor.scoreboard import Scoreboard
from repro.optimize.ladders import prove_first_match
from repro.runtime.compiled import (
    CompiledEngine,
    CompiledMonitor,
    _resolve_ladder,
    _stepping_table,
    as_compiled,
    peek_cell,
    run_many_encoded,
)
from repro.semantics.run import Trace

__all__ = [
    "MISSING",
    "VectorEngine",
    "VectorTable",
    "run_many_vector",
    "run_many_vector_encoded",
    "vector_table",
]

try:  # pragma: no cover - exercised via the fallback differential run
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None
if os.environ.get("REPRO_NO_NUMPY"):  # test hook: force the fallback
    _np = None

#: Flat-table marker for a cell with no enabled transition.  Escape
#: cells with scalar payloads are encoded ``-2 - spec_index``.
MISSING = -1

#: A rung condition whose DNF exceeds this many terms stays scalar —
#: real ladder conditions are small conjunctions of ``Chk_evt`` atoms.
_MAX_RUNG_TERMS = 32

#: ``Chk_evt`` literals pack into one presence word per lane; int64
#: bounds the packable counts-matrix rows.
_MAX_PRESENCE_BITS = 63


class _PredicatedPlan:
    """Predicated lowering of one escape cell: flat rung-*term* rows.

    Each rung condition's DNF term is one row
    ``(chk_pos, chk_neg, inp_pos, inp_neg, target, deltas, group)``:

    * ``chk_pos``/``chk_neg`` — presence-word literals over the
      table's counts-matrix rows (``Chk_evt`` and its negation);
    * ``inp_pos``/``inp_neg`` — valuation-mask literals (input refs);
    * ``target`` — the rung's successor state;
    * ``deltas`` — the rung's scoreboard effect,
      ``(counts_row, total, floor)`` per touched event (see
      :func:`_rung_deltas`);
    * ``group`` — rung behaviour class: terms with equal
      ``(target, actions)`` share a group, and only cross-group double
      passes are the full-scan nondeterminism the scalar engine
      reports.

    ``safe`` marks cells where first-match dispatch is provably the
    full scan's answer (``ladder_exclusive`` monitors by construction,
    single-group cells trivially, full-scan cells via
    :func:`~repro.optimize.ladders.prove_first_match`): their runs
    skip the conflict matrices entirely.
    """

    __slots__ = ("terms", "safe")

    def __init__(self, terms: Tuple[tuple, ...], safe: bool):
        self.terms = terms
        self.safe = safe


class _EscapeSpec:
    """Scalar payload of one escape cell.

    ``kind`` is ``"step"`` (unconditional transition with actions),
    ``"ladder"``, or ``"scalar"`` (a cell whose condition falls
    outside the predicated guard language — the whole monitor then
    resolves escapes per lane).  ``plan`` is the
    :class:`_PredicatedPlan`, or ``None`` for scalar cells.
    """

    __slots__ = ("kind", "cell", "state", "plan")

    def __init__(self, kind, cell, state, plan=None):
        self.kind = kind
        self.cell = cell
        self.state = state
        self.plan = plan


def _rung_deltas(transition: Transition, event_row) -> Tuple:
    """Net scoreboard effect of one transition's action list.

    ``(counts_row, total, floor)`` per touched event: ``total`` is the
    net delta over the whole list, ``floor`` the minimum running total
    any ``Del_evt`` step reaches during sequential application — a
    lane under-runs (the strict-scoreboard error) iff
    ``counts + floor < 0``, which the kernels test *before* applying
    ``total``.
    """
    totals: dict = {}
    floors: dict = {}
    for action in transition.actions:
        if isinstance(action, AddEvt):
            step = 1
        elif isinstance(action, DelEvt):
            step = -1
        else:  # pragma: no cover - no other Action kinds exist today
            raise LookupError(f"unsupported action {action!r}")
        for event in action.events:
            row = event_row(event)
            running = totals.get(row, 0) + step
            totals[row] = running
            if step < 0 and running < floors.get(row, 0):
                floors[row] = running
    return tuple(
        (row, total, floors.get(row, 0))
        for row, total in totals.items()
        if total or floors.get(row, 0)
    )


def _literal_terms(expr, codec, event_row, negate=False) -> Optional[list]:
    """Disjunctive normal form of a rung condition over literal atoms.

    Returns ``(chk_pos, chk_neg, inp_pos, inp_neg)`` bitmask terms —
    the condition holds iff some term's positive literals all hold and
    none of its negative ones do; ``[]`` is constant false.  Returns
    ``None`` when the condition falls outside the literal language or
    its DNF exceeds :data:`_MAX_RUNG_TERMS` — the caller then keeps
    the scalar escape path.
    """
    if isinstance(expr, Const):
        return [(0, 0, 0, 0)] if bool(expr.value) ^ negate else []
    if isinstance(expr, _Ref):
        bit = codec.bit_of.get(expr.name, 0)
        if not bit:
            # Symbol outside the codec: constantly absent.
            return [(0, 0, 0, 0)] if negate else []
        return [(0, 0, 0, bit)] if negate else [(0, 0, bit, 0)]
    if isinstance(expr, ScoreboardCheck):
        row = event_row(expr.event)
        if row >= _MAX_PRESENCE_BITS:
            return None
        bit = 1 << row
        return [(0, bit, 0, 0)] if negate else [(bit, 0, 0, 0)]
    if isinstance(expr, Not):
        return _literal_terms(expr.operand, codec, event_row, not negate)
    if isinstance(expr, (And, Or)):
        parts = [
            _literal_terms(arg, codec, event_row, negate)
            for arg in expr.args
        ]
        if any(part is None for part in parts):
            return None
        if not (isinstance(expr, And) ^ negate):
            # Disjunction (Or, or De Morgan'd And): concatenate.
            union = [term for part in parts for term in part]
            union = list(dict.fromkeys(union))
            return None if len(union) > _MAX_RUNG_TERMS else union
        # Conjunction: cross product, contradictory terms dropped.
        terms = [(0, 0, 0, 0)]
        for part in parts:
            merged = []
            for cp, cn, ip, im in terms:
                for pcp, pcn, pip, pim in part:
                    ncp, ncn = cp | pcp, cn | pcn
                    nip, nim = ip | pip, im | pim
                    if ncp & ncn or nip & nim:
                        continue
                    merged.append((ncp, ncn, nip, nim))
            merged = list(dict.fromkeys(merged))
            if len(merged) > _MAX_RUNG_TERMS:
                return None
            terms = merged
        return terms
    return None


class _NpPlan:
    """The stacked NumPy form of every spec's predicated plan.

    Row ``(spec, rung)`` of each matrix is one DNF term; specs with
    fewer terms than the widest pad with invalid rows.  Shared by
    every batch run of the owning table (built once, lazily).
    """

    __slots__ = ("valid", "cpos", "cmask", "ipos", "imask", "target",
                 "delta", "minp", "diff", "pow2", "n_events",
                 "any_chk", "any_inp", "has_ops", "has_dels",
                 "has_conflicts")

    def __init__(self, specs, n_events):
        rows = max(1, n_events)
        width = max([len(spec.plan.terms) for spec in specs] + [1])
        shape = (len(specs), width)
        self.n_events = n_events
        self.valid = _np.zeros(shape, dtype=bool)
        # A term holds iff ``word & (pos|neg) == pos`` — one masked
        # compare covers both literal polarities per family.
        self.cpos = _np.zeros(shape, dtype=_np.int64)
        self.cmask = _np.zeros(shape, dtype=_np.int64)
        self.ipos = _np.zeros(shape, dtype=_np.int32)
        self.imask = _np.zeros(shape, dtype=_np.int32)
        self.target = _np.zeros(shape, dtype=_np.int32)
        self.delta = _np.zeros(shape + (rows,), dtype=_np.int32)
        self.minp = _np.zeros(shape + (rows,), dtype=_np.int32)
        self.diff = _np.zeros(shape + (width,), dtype=bool)
        for index, spec in enumerate(specs):
            terms = spec.plan.terms
            for rung, term in enumerate(terms):
                self.valid[index, rung] = True
                self.cpos[index, rung] = term[0]
                self.cmask[index, rung] = term[1]
                self.ipos[index, rung] = term[2]
                self.imask[index, rung] = term[3]
                self.target[index, rung] = term[4]
                for row, total, floor in term[5]:
                    self.delta[index, rung, row] = total
                    self.minp[index, rung, row] = floor
            if not spec.plan.safe:
                for left, lterm in enumerate(terms):
                    for right, rterm in enumerate(terms):
                        self.diff[index, left, right] = (
                            lterm[6] != rterm[6]
                        )
        self.pow2 = _np.left_shift(
            _np.int64(1), _np.arange(n_events, dtype=_np.int64)
        )
        self.any_chk = bool(self.cmask.any())
        self.any_inp = bool(self.imask.any())
        self.has_ops = bool(self.delta.any() or self.minp.any())
        self.has_dels = bool(self.minp.any())
        self.has_conflicts = bool(self.diff.any())


class VectorTable:
    """A compiled monitor lowered to one flat ``next_state`` array.

    ``flat[state * size + mask]`` is the successor state for check-free,
    action-free cells; negative entries escape (:data:`MISSING` or an
    index into ``specs``).  ``escape_ratio`` reports the static density
    of escape cells; ``residual_ratio`` the post-predication residual —
    the batch planner's signal for when the vector kernel stops paying
    (see DESIGN.md).
    """

    __slots__ = ("compiled", "size", "n_states", "final", "flat",
                 "escapes", "residual", "specs", "events",
                 "vectorizable", "_np_flat", "_np_plan")

    def __init__(self, compiled: CompiledMonitor):
        self.compiled = compiled
        self.size = size = compiled.codec.size
        self.n_states = compiled.n_states
        self.final = compiled.final
        codec = compiled.codec
        exclusive = compiled.ladder_exclusive
        events: List[str] = []
        rows: dict = {}

        def event_row(event: str) -> int:
            row = rows.get(event)
            if row is None:
                row = rows[event] = len(events)
                events.append(event)
            return row

        specs: List[_EscapeSpec] = []
        spec_of: dict = {}
        vectorizable = True
        escapes = 0
        residual = 0
        cells: List[int] = []
        for state in range(compiled.n_states):
            row = compiled._table[state]
            for mask in range(size):
                cell = peek_cell(row, mask)
                if cell is None:
                    cells.append(MISSING)
                    escapes += 1
                    residual += 1
                    continue
                if type(cell) is not tuple and not cell.actions:
                    cells.append(cell.target)
                    continue
                escapes += 1
                key = id(cell)
                index = spec_of.get(key)
                if index is None:
                    index = len(specs)
                    try:
                        specs.append(self._lower_escape(
                            cell, state, codec, event_row, exclusive
                        ))
                    except LookupError:
                        vectorizable = False
                        specs.append(_EscapeSpec("scalar", cell, state))
                    spec_of[key] = index
                if specs[index].plan is None:
                    residual += 1
                cells.append(-2 - index)
        self.flat = array("i", cells)
        self.escapes = escapes
        self.residual = residual
        self.specs = specs
        self.events = tuple(events)
        self.vectorizable = vectorizable
        self._np_flat = None
        self._np_plan = None

    @staticmethod
    def _lower_escape(cell, state, codec, event_row,
                      exclusive) -> _EscapeSpec:
        if type(cell) is not tuple:
            term = (0, 0, 0, 0, cell.target,
                    _rung_deltas(cell, event_row), 0)
            return _EscapeSpec("step", cell, state,
                               plan=_PredicatedPlan((term,), safe=True))
        groups: dict = {}
        terms: List[tuple] = []
        for check, transition in cell:
            key = (transition.target, transition.actions)
            group = groups.setdefault(key, len(groups))
            deltas = _rung_deltas(transition, event_row)
            if check is None:
                literals = [(0, 0, 0, 0)]
            else:
                literals = _literal_terms(check.expr, codec, event_row)
                if literals is None:
                    raise LookupError(
                        f"rung condition {check!r} outside the "
                        f"predicated guard language"
                    )
            # Stored per term: masked-compare form — ``pos`` plus the
            # combined ``pos|neg`` mask per literal family (the term
            # holds iff ``word & mask == pos``).
            terms.extend(
                (cp, cp | cn, ip, ip | im, transition.target, deltas,
                 group)
                for cp, cn, ip, im in literals
            )
        # First-match safety lets the run skip conflict detection:
        # exclusive ladders by construction, single-behaviour cells
        # trivially, full-scan cells via the hardening proof.
        safe = (exclusive or len(groups) == 1
                or prove_first_match(cell) is not None)
        return _EscapeSpec("ladder", cell, state,
                           plan=_PredicatedPlan(tuple(terms), safe))

    @property
    def escape_ratio(self) -> float:
        """Static lowering density: cells outside the one-gather path."""
        return self.escapes / len(self.flat) if len(self.flat) else 0.0

    @property
    def residual_ratio(self) -> float:
        """Post-predication residual: the cell fraction whose lanes
        still leave array code for per-lane scalar resolution.

        Predicated ladder/step cells stay inside the kernel, so only
        missing cells (which raise via scalar replay) count — unless
        some cell resisted predication, in which case every escape
        lane runs the scalar board path and the residual is the full
        escape density.
        """
        if not self.vectorizable:
            return self.escape_ratio
        return self.residual / len(self.flat) if len(self.flat) else 0.0

    def np_flat(self):
        """The flat table as a NumPy array (built once, shared)."""
        if self._np_flat is None:
            self._np_flat = _np.asarray(self.flat, dtype=_np.int32)
        return self._np_flat

    def np_plan(self) -> _NpPlan:
        """The stacked predicated-plan matrices (built once, shared)."""
        if self._np_plan is None:
            self._np_plan = _NpPlan(self.specs, len(self.events))
        return self._np_plan

    def __repr__(self):
        return (f"VectorTable({self.compiled.name!r}, "
                f"states={self.n_states}, size={self.size}, "
                f"escapes={self.escapes}, residual={self.residual})")


#: Memoized lowerings, keyed by monitor identity.
_TABLES = IdentityCache(limit=64)


def vector_table(compiled: CompiledMonitor) -> VectorTable:
    """The (memoized) flat lowering of ``compiled``."""
    cached = _TABLES.get(compiled)
    if cached is not None:
        return cached
    return _TABLES.put(compiled, VectorTable(compiled))


def _resolve_escape(compiled, table, state: int, mask: int, scoreboard,
                    trace_index: int, tick: int):
    """Scalar resolution of one escape lane: the transition taken.

    Mirrors the ``run_many`` inner loop exactly — same ladder
    semantics, same action application order, same error messages.
    """
    cell = table[state][mask]
    if type(cell) is tuple:
        cell = _resolve_ladder(
            cell, mask, scoreboard, compiled.ladder_exclusive,
            compiled.name, state,
        )
    if cell is None:
        raise MonitorError(
            f"monitor {compiled.name!r}: no transition enabled in "
            f"state {state} on input "
            f"{compiled.codec.decode(mask)!r} (trace {trace_index}, "
            f"tick {tick})"
        )
    for action in cell.actions:
        action.apply(scoreboard)
    return cell


def run_many_vector(
    monitor: Union[Monitor, CompiledMonitor],
    traces: Sequence[Trace],
    scoreboards: Optional[Sequence[Scoreboard]] = None,
    record_transitions: bool = False,
) -> List[MonitorResult]:
    """Drop-in for :func:`~repro.runtime.compiled.run_many`, vectorized.

    Traces are encoded once through the shared
    :meth:`~repro.logic.codec.AlphabetCodec.encode_trace` cache, then
    stepped lock-step through the flat table.  ``record_transitions``
    needs the per-tick transition *objects*, which no gather can
    produce — those runs delegate to the scalar ``run_many`` (identical
    results either way).
    """
    compiled = as_compiled(monitor)
    if scoreboards is not None and len(scoreboards) != len(traces):
        raise MonitorError(
            "run_many needs exactly one scoreboard per trace when provided"
        )
    # The fallback loop indexes plain lists; ask the cache for its
    # memoized list form directly so warm batches pay no conversion.
    return run_many_vector_encoded(
        compiled,
        compiled.codec.encode_many(traces, as_list=_np is None),
        scoreboards=scoreboards,
        record_transitions=record_transitions,
    )


def run_many_vector_encoded(
    monitor: Union[Monitor, CompiledMonitor],
    mask_arrays: Sequence[Sequence[int]],
    scoreboards: Optional[Sequence[Scoreboard]] = None,
    record_transitions: bool = False,
) -> List[MonitorResult]:
    """:func:`run_many_vector` over pre-encoded mask arrays."""
    compiled = as_compiled(monitor)
    if record_transitions:
        # Transition logging is inherently scalar: every tick needs the
        # taken Transition object, so the gather buys nothing.
        return run_many_encoded(
            compiled, mask_arrays, scoreboards=scoreboards,
            record_transitions=True,
        )
    if scoreboards is not None and len(scoreboards) != len(mask_arrays):
        raise MonitorError(
            "run_many needs exactly one scoreboard per trace when provided"
        )
    if _np is not None:
        return _run_numpy(compiled, mask_arrays, scoreboards)
    return _run_fallback(compiled, mask_arrays, scoreboards)


class _VectorAnomaly(Exception):
    """Internal signal: some escaped lane of this tick must raise.

    Anomalies (strict ``Del_evt`` under-runs, no passing rung,
    scoreboard-dependent nondeterminism, missing cells) are detected
    batch-wide — and, in the predicated path, *before* any counts
    mutation — but ``run_many`` surfaces the failure of the *lowest
    trace index*; the handler re-resolves every escaped lane in trace
    order from the untouched pre-tick counts to raise the identical
    error.
    """


class _NumpyRun:
    """One lock-step batch execution (NumPy path).

    Lanes are sorted by trace length (descending) so the active set at
    any tick is a prefix and every per-tick array op is one slice.
    The scoreboard is the ``counts[event, lane]`` matrix unless the
    caller injected real scoreboards (their mutations are observable),
    in which case escapes resolve per lane through the scalar path.
    """

    def __init__(self, compiled, mask_arrays, scoreboards):
        self.compiled = compiled
        self.vt = vector_table(compiled)
        self.count = len(mask_arrays)
        self.lengths = [len(m) for m in mask_arrays]
        self.order = sorted(range(self.count), key=lambda i: -self.lengths[i])
        self.sorted_lengths = [self.lengths[i] for i in self.order]
        self.max_len = self.sorted_lengths[0] if self.count else 0
        # Tick-major layouts: each tick's gather reads/writes one
        # contiguous row instead of a strided column.
        self.mat = _np.zeros((self.max_len, self.count), dtype=_np.int32)
        for row, lane in enumerate(self.order):
            if self.lengths[lane]:
                self.mat[:self.lengths[lane], row] = _np.asarray(
                    mask_arrays[lane], dtype=_np.int32
                )
        # -1 never equals a state, so the region past a lane's length
        # stays inert for the batched detection scan below.
        self.history = _np.full((self.max_len + 1, self.count), -1,
                                dtype=_np.int32)
        self.history[0, :] = compiled.initial
        self.states = _np.full(self.count, compiled.initial, dtype=_np.int32)
        self.scalar_table = _stepping_table(compiled)
        self.vector_boards = scoreboards is None and self.vt.vectorizable
        self.counts = (
            _np.zeros((max(1, len(self.vt.events)), self.count),
                      dtype=_np.int32)
            if self.vector_boards and self.vt.escapes else None
        )
        self.plan = (
            self.vt.np_plan()
            if self.vector_boards and self.vt.escapes else None
        )
        # Per-lane packed Chk_evt-presence words, maintained
        # incrementally under the counts deltas: rebuilding them as
        # ``pow2 @ (counts > 0)`` every escape tick costs a whole-batch
        # matmul, while flips are rare and sparse.
        self.presence = (
            _np.zeros(self.count, dtype=_np.int64)
            if self.plan is not None and self.plan.any_chk else None
        )
        # Missing cells are the only escape codes the plan cannot
        # dispatch; tables without any skip the per-tick max scan.
        self.check_missing = self.vt.residual > 0
        self.lane_arange = _np.arange(self.count)
        if scoreboards is not None:
            self.boards: Optional[List[Scoreboard]] = [
                scoreboards[i] for i in self.order
            ]
        elif not self.vector_boards:
            self.boards = [Scoreboard() for _ in range(self.count)]
        else:
            self.boards = None

    # -- scalar replay -----------------------------------------------------
    def _board_for(self, row: int) -> Scoreboard:
        """A real scoreboard equal to lane ``row``'s counts column."""
        board = Scoreboard()
        if self.counts is not None:
            board.restore({
                event: int(self.counts[index, row])
                for index, event in enumerate(self.vt.events)
            })
        return board

    def _raise_in_trace_order(self, escaped, tick, live):
        """Re-resolve every escaped lane scalar, lowest trace index
        first, raising the exact error ``run_many`` would surface.

        The predicated resolver detects anomalies before mutating any
        counts column, so the pre-tick scoreboard state each lane
        replays from is simply the live matrix; each lane gets a fresh
        scoreboard built from its own column, so succeeding lanes
        cannot double-apply actions."""
        rows = sorted((int(row) for row in escaped),
                      key=self.order.__getitem__)
        for row in rows:
            _resolve_escape(
                self.compiled, self.scalar_table, int(live[row]),
                int(self.mat[tick, row]), self._board_for(row),
                self.order[row], tick,
            )
        raise MonitorError(  # pragma: no cover - detection was certain
            f"monitor {self.compiled.name!r}: internal vector anomaly at "
            f"tick {tick} did not reproduce under scalar replay"
        )

    # -- predicated escape resolution --------------------------------------
    def _step_escapes(self, escaped, tick, nxt) -> None:
        """Resolve every escaped lane of one tick inside array code.

        Literal-term matrices select the first passing rung per lane
        (argmax over the stacked rung axis); targets and scoreboard
        deltas gather from the plan.  Every anomaly check — missing
        cell, no passing rung, cross-group conflict, ``Del_evt``
        under-run — runs *before* the counts matrix is touched, so the
        replay handler sees the genuine pre-tick state.
        """
        plan = self.plan
        codes = nxt[escaped]
        # MISSING is the greatest escape code (-1); spec cells are <= -2.
        if self.check_missing and codes.max() == MISSING:
            raise _VectorAnomaly
        sidx = -2 - codes
        passing = plan.valid[sidx]
        if plan.any_chk:
            present = self.presence[escaped]
            passing &= (
                present[:, None] & plan.cmask[sidx]
            ) == plan.cpos[sidx]
        if plan.any_inp:
            col = self.mat[tick, escaped][:, None]
            passing &= (col & plan.imask[sidx]) == plan.ipos[sidx]
        first = passing.argmax(axis=1)
        if not passing[self.lane_arange[:len(first)], first].all():
            # Some lane passed no rung: an incomplete monitor.
            raise _VectorAnomaly
        if plan.has_conflicts and (passing & plan.diff[sidx, first]).any():
            # Scoreboard-dependent nondeterminism: the full scan the
            # interpreted engine runs would raise.
            raise _VectorAnomaly
        nxt[escaped] = plan.target[sidx, first]
        if plan.has_ops:
            column = self.counts[:, escaped]
            if plan.has_dels and (
                column + plan.minp[sidx, first].T < 0
            ).any():
                # Strict Del_evt under-run somewhere in the batch.
                raise _VectorAnomaly
            updated = column + plan.delta[sidx, first].T
            if self.presence is not None:
                flips = (
                    (updated[:plan.n_events] > 0)
                    != (column[:plan.n_events] > 0)
                )
                if flips.any():
                    self.presence[escaped] ^= plan.pow2 @ flips
            self.counts[:, escaped] = updated

    # -- the tick loop -----------------------------------------------------
    def run(self) -> List[MonitorResult]:
        compiled = self.compiled
        vt = self.vt
        flat = vt.np_flat()
        size = vt.size
        has_escapes = vt.escapes > 0
        scalar_escapes = self.boards is not None
        states = self.states
        mat = self.mat
        history = self.history
        index_buf = _np.empty(self.count, dtype=_np.int32)
        next_buf = _np.empty(self.count, dtype=_np.int32)
        active = self.count
        for tick in range(self.max_len):
            while active > 0 and self.sorted_lengths[active - 1] <= tick:
                active -= 1
            live = states[:active]
            index = index_buf[:active]
            _np.multiply(live, size, out=index)
            index += mat[tick, :active]
            nxt = next_buf[:active]
            _np.take(flat, index, out=nxt)
            if has_escapes and nxt.min() < 0:
                escaped = _np.nonzero(nxt < 0)[0]
                if scalar_escapes:
                    # Trace-index order: independent boards make the
                    # results order-free, but *which* lane's error
                    # surfaces first must match run_many.
                    for row in sorted((int(r) for r in escaped),
                                      key=self.order.__getitem__):
                        transition = _resolve_escape(
                            compiled, self.scalar_table, int(live[row]),
                            int(mat[tick, row]), self.boards[row],
                            self.order[row], tick,
                        )
                        nxt[row] = transition.target
                else:
                    try:
                        self._step_escapes(escaped, tick, nxt)
                    except _VectorAnomaly:
                        self._raise_in_trace_order(escaped, tick, live)
            states[:active] = nxt
            history[tick + 1, :active] = nxt
        results: List[Optional[MonitorResult]] = [None] * self.count
        final = vt.final
        # One batched scan finds every detection: the -1 fill past each
        # lane's length can never equal a state, and nonzero's
        # row-major order keeps per-lane ticks ascending.
        detections: List[List[int]] = [[] for _ in range(self.count)]
        tick_hits, lane_hits = _np.nonzero(history[1:, :] == final)
        for hit_tick, row in zip(tick_hits.tolist(), lane_hits.tolist()):
            detections[row].append(hit_tick)
        lane_states = history.T.tolist()
        for row, lane in enumerate(self.order):
            length = self.lengths[lane]
            results[lane] = MonitorResult(
                compiled.name, lane_states[row][:length + 1],
                detections[row], length,
            )
        return results


def _run_numpy(compiled, mask_arrays, scoreboards) -> List[MonitorResult]:
    count = len(mask_arrays)
    if count == 0 or max(len(m) for m in mask_arrays) == 0:
        return [
            MonitorResult(compiled.name, [compiled.initial], [], 0)
            for _ in range(count)
        ]
    return _NumpyRun(compiled, mask_arrays, scoreboards).run()


def _run_fallback(compiled, mask_arrays, scoreboards) -> List[MonitorResult]:
    """Pure-Python flat-table lock-step (NumPy absent) — same contract.

    Escapes resolve through the same predicated plans the NumPy kernel
    uses, loop-predicated: per-lane integer counts plus a presence
    word, literal-term tests instead of check-closure calls, scalar
    replay reserved for lanes that raise.  Injected scoreboards
    (observable objects) and non-predicable monitors keep the per-lane
    scalar board path.
    """
    count = len(mask_arrays)
    vt = vector_table(compiled)
    flat = vt.flat
    size = vt.size
    final = vt.final
    scalar_table = _stepping_table(compiled)
    specs = vt.specs
    events = vt.events
    n_events = len(events)
    predicated = scoreboards is None and vt.vectorizable
    masks = [
        stream if type(stream) is list else list(stream)
        for stream in mask_arrays
    ]
    lengths = [len(m) for m in masks]
    states = [compiled.initial] * count
    histories = [[compiled.initial] * (length + 1) for length in lengths]
    detections: List[List[int]] = [[] for _ in range(count)]
    boards: List[Optional[Scoreboard]] = (
        list(scoreboards) if scoreboards is not None else [None] * count
    )
    lane_counts: List[Optional[List[int]]] = [None] * count
    lane_present: List[int] = [0] * count

    def replay(index: int, tick: int, mask: int):
        """Scalar replay of a failing lane: raises run_many's error."""
        board = Scoreboard()
        counts = lane_counts[index]
        if counts is not None:
            board.restore({
                events[row]: counts[row] for row in range(n_events)
            })
        _resolve_escape(compiled, scalar_table, states[index], mask, board,
                        index, tick)
        raise MonitorError(  # pragma: no cover - detection was certain
            f"monitor {compiled.name!r}: internal vector anomaly at "
            f"tick {tick} did not reproduce under scalar replay"
        )

    active = [index for index in range(count) if lengths[index] > 0]
    tick = 0
    while active:
        surviving: List[int] = []
        for index in active:
            mask = masks[index][tick]
            state = flat[states[index] * size + mask]
            if state < 0:
                if not predicated:
                    board = boards[index]
                    if board is None:
                        board = Scoreboard()
                        boards[index] = board
                    state = _resolve_escape(
                        compiled, scalar_table, states[index], mask, board,
                        index, tick,
                    ).target
                elif state == MISSING:
                    replay(index, tick, mask)
                else:
                    spec = specs[-2 - state]
                    counts = lane_counts[index]
                    if counts is None:
                        counts = lane_counts[index] = [0] * n_events
                    present = lane_present[index]
                    terms = spec.plan.terms
                    chosen = None
                    position = 0
                    for position, term in enumerate(terms):
                        if ((present & term[1]) == term[0]
                                and (mask & term[3]) == term[2]):
                            chosen = term
                            break
                    if chosen is None:
                        # No passing rung: an incomplete monitor.
                        replay(index, tick, mask)
                    if not spec.plan.safe:
                        group = chosen[6]
                        for term in terms[position + 1:]:
                            if (term[6] != group
                                    and (present & term[1]) == term[0]
                                    and (mask & term[3]) == term[2]):
                                # Cross-group double pass: the full
                                # scan's nondeterminism error.
                                replay(index, tick, mask)
                    deltas = chosen[5]
                    if deltas:
                        for row, _, floor in deltas:
                            if counts[row] + floor < 0:
                                # Strict Del_evt under-run.
                                replay(index, tick, mask)
                        for row, total, _ in deltas:
                            value = counts[row] + total
                            counts[row] = value
                            if value > 0:
                                present |= 1 << row
                            else:
                                present &= ~(1 << row)
                        lane_present[index] = present
                    state = chosen[4]
            states[index] = state
            histories[index][tick + 1] = state
            if state == final:
                detections[index].append(tick)
            if tick + 1 < lengths[index]:
                surviving.append(index)
        active = surviving
        tick += 1
    return [
        MonitorResult(compiled.name, histories[index], detections[index],
                      lengths[index])
        for index in range(count)
    ]


class VectorEngine(CompiledEngine):
    """A compiled engine with a chunked flat-table fast path.

    Scalar ``step``/``feed``/two-phase semantics are inherited
    unchanged from :class:`CompiledEngine`; :meth:`feed_masks` consumes
    a pre-encoded chunk of ticks in one tight loop over the flat
    integer table — the streaming checker's vector mode batches its
    input into chunks and pushes them through here, skipping three
    Python method calls per tick per monitor.
    """

    def __init__(self, monitor, scoreboard: Optional[Scoreboard] = None,
                 record_history: bool = True):
        super().__init__(monitor, scoreboard=scoreboard,
                         record_history=record_history)
        self._vt = vector_table(self._compiled)

    def feed_masks(self, masks: Sequence[int]) -> List[int]:
        """Consume one chunk of encoded ticks; return detection offsets.

        Offsets are relative to the first tick of the chunk.  State,
        tick count and scoreboard evolve exactly as ``len(masks)``
        ``step`` calls would — including on failure: an escape that
        cannot resolve raises the same error ``step`` raises, with the
        engine left exactly where per-tick stepping would have left it
        (state and tick at the failing element, earlier elements
        committed).  Per-tick history recording is not supported
        (streaming engines run ``record_history=False``).
        """
        if self._record_history:
            raise MonitorError(
                "feed_masks is the streaming fast path; construct the "
                "engine with record_history=False (step() records "
                "history tick by tick)"
            )
        vt = self._vt
        flat = vt.flat
        size = vt.size
        final = vt.final
        compiled = self._compiled
        scalar_table = self._table
        scoreboard = self._scoreboard
        exclusive = self._exclusive
        state = self._state
        detections: List[int] = []
        for offset, mask in enumerate(masks):
            nxt = flat[state * size + mask]
            if nxt < 0:
                try:
                    cell = scalar_table[state][mask]
                    if type(cell) is tuple:
                        cell = _resolve_ladder(
                            cell, mask, scoreboard, exclusive,
                            compiled.name, state,
                        )
                    if cell is None:
                        raise MonitorError(
                            f"monitor {compiled.name!r}: no transition "
                            f"enabled in state {state} on input "
                            f"{compiled.codec.decode(mask)!r} "
                            f"(scoreboard {scoreboard!r})"
                        )
                    for action in cell.actions:
                        action.apply(scoreboard)
                except Exception:
                    # Leave the engine where step-by-step stepping
                    # would have: at the failing tick.
                    self._state = state
                    self._tick += offset
                    raise
                nxt = cell.target
            state = nxt
            if state == final:
                detections.append(offset)
        self._state = state
        self._tick += len(masks)
        return detections
