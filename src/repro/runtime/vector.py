"""Trace-parallel vectorized batch execution over flat integer tables.

:func:`~repro.runtime.compiled.run_many` steps one trace element per
Python iteration — fast per *monitor*, but the interpreter overhead is
paid per lane-tick.  This kernel flattens a
:class:`~repro.runtime.compiled.CompiledMonitor`'s check-free cells
into a single integer array ``next_state[state * 2^|Sigma| + mask]``
and advances **every trace of a batch in lock-step with one indexed
gather per tick** (NumPy fancy indexing), so the per-tick interpreter
cost is amortized over the whole batch width.

Escape-mask design
------------------
Cells the gather cannot resolve directly are *escapes*, encoded as
negative entries in the flat table:

* **check-ladder cells** — their move depends on the dynamic
  scoreboard;
* **action-carrying transitions** — they mutate the scoreboard, and
  the mutation must land in tick order;
* **missing cells** — an incomplete monitor raises exactly as the
  scalar engines do.

After each gather the escaped lanes are grouped by cell and resolved
against a **vectorized scoreboard**: one ``counts[event, lane]``
matrix replaces the per-lane :class:`~repro.monitor.scoreboard.Scoreboard`
objects, ``Add_evt``/``Del_evt`` become fancy-indexed increments, and
ladder rung conditions compile to NumPy boolean kernels — so even a
100%-ladder monitor stays inside array code.  Any anomaly (a missing
cell, a strict ``Del_evt`` under-run, scoreboard-dependent
nondeterminism) *replays* the offending lane through the scalar
resolver on a reconstructed scoreboard, so the raised error is the
genuine article.  Caller-injected scoreboards are real objects with
observable mutations; those runs keep the scalar per-lane escape path.
Verdicts, detection ticks, state histories and scoreboard evolution
stay bit-identical to :func:`run_many` by construction — the
differential suite (``tests/runtime/test_vector_differential.py``)
locks this down.

NumPy is an **optional** dependency: when it is absent (or the
``REPRO_NO_NUMPY`` environment variable is set) the identical API runs
on a pure-Python flat ``array('i')`` fallback — still faster than cell
dispatch, since the hot loop compares one int instead of type-checking
cell objects.
"""

from __future__ import annotations

import os
from array import array
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.cache import IdentityCache
from repro.errors import MonitorError
from repro.logic.expr import And, Const, Not, Or, ScoreboardCheck, _Ref
from repro.monitor.automaton import AddEvt, DelEvt, Monitor, Transition
from repro.monitor.engine import MonitorResult
from repro.monitor.scoreboard import Scoreboard
from repro.runtime.compiled import (
    CompiledEngine,
    CompiledMonitor,
    _resolve_ladder,
    _stepping_table,
    as_compiled,
    peek_cell,
    run_many_encoded,
)
from repro.semantics.run import Trace

__all__ = [
    "MISSING",
    "VectorEngine",
    "VectorTable",
    "run_many_vector",
    "run_many_vector_encoded",
    "vector_table",
]

try:  # pragma: no cover - exercised via the fallback differential run
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None
if os.environ.get("REPRO_NO_NUMPY"):  # test hook: force the fallback
    _np = None

#: Flat-table marker for a cell with no enabled transition.  Escape
#: cells with scalar payloads are encoded ``-2 - spec_index``.
MISSING = -1


class _EscapeSpec:
    """Scalar payload of one escape cell.

    ``kind`` is ``"step"`` (unconditional transition with actions) or
    ``"ladder"``; ``ops`` / rung ops are ``("add"|"del", event_row)``
    pairs against the counts matrix; ``conds`` holds one vectorized
    condition kernel per rung (``None`` = unconditional floor).
    """

    __slots__ = ("kind", "cell", "state", "target", "ops", "rungs",
                 "differs")

    def __init__(self, kind, cell, state, target=None, ops=(), rungs=(),
                 differs=None):
        self.kind = kind
        self.cell = cell
        self.state = state
        self.target = target
        self.ops = ops
        self.rungs = rungs
        self.differs = differs


def _action_ops(transition: Transition, event_row) -> Tuple:
    ops = []
    for action in transition.actions:
        if isinstance(action, AddEvt):
            ops.extend(("add", event_row(e)) for e in action.events)
        elif isinstance(action, DelEvt):
            ops.extend(("del", event_row(e)) for e in action.events)
        else:  # pragma: no cover - no other Action kinds exist today
            raise LookupError(f"unsupported action {action!r}")
    return tuple(ops)


def _vector_cond(expr, codec, event_row) -> Callable:
    """Compile a guard residue to ``fn(counts_sub, masks_sub) -> bools``.

    ``counts_sub`` is the counts matrix restricted to the lanes under
    evaluation, ``masks_sub`` their current valuation masks (a ladder
    cell interned across several masks sees per-lane masks).  Raises
    ``LookupError`` for expression kinds outside the guard language —
    the caller then keeps the scalar escape path.
    """
    if isinstance(expr, Const):
        value = bool(expr.value)
        return lambda counts, masks: _np.full(masks.shape, value, bool)
    if isinstance(expr, _Ref):
        bit = codec.bit_of.get(expr.name, 0)
        if not bit:
            return lambda counts, masks: _np.zeros(masks.shape, bool)
        return lambda counts, masks: (masks & bit) != 0
    if isinstance(expr, ScoreboardCheck):
        row = event_row(expr.event)
        return lambda counts, masks: counts[row] > 0
    if isinstance(expr, Not):
        inner = _vector_cond(expr.operand, codec, event_row)
        return lambda counts, masks: ~inner(counts, masks)
    if isinstance(expr, (And, Or)):
        fns = [_vector_cond(arg, codec, event_row) for arg in expr.args]
        combine = _np.logical_and if isinstance(expr, And) else _np.logical_or
        def nary(counts, masks, fns=fns, combine=combine):
            result = fns[0](counts, masks)
            for fn in fns[1:]:
                result = combine(result, fn(counts, masks))
            return result
        return nary
    raise LookupError(f"unsupported guard kind {type(expr).__name__}")


class VectorTable:
    """A compiled monitor lowered to one flat ``next_state`` array.

    ``flat[state * size + mask]`` is the successor state for check-free,
    action-free cells; negative entries escape (:data:`MISSING` or an
    index into ``specs``).  ``escape_ratio`` reports the static density
    of escape cells — the batch planner's signal for when the vector
    kernel stops paying (see DESIGN.md).
    """

    __slots__ = ("compiled", "size", "n_states", "final", "flat",
                 "escapes", "specs", "events", "vectorizable", "_np_flat")

    def __init__(self, compiled: CompiledMonitor):
        self.compiled = compiled
        self.size = size = compiled.codec.size
        self.n_states = compiled.n_states
        self.final = compiled.final
        codec = compiled.codec
        events: List[str] = []
        rows: dict = {}

        def event_row(event: str) -> int:
            row = rows.get(event)
            if row is None:
                row = rows[event] = len(events)
                events.append(event)
            return row

        specs: List[_EscapeSpec] = []
        spec_of: dict = {}
        vectorizable = True
        escapes = 0
        cells: List[int] = []
        for state in range(compiled.n_states):
            row = compiled._table[state]
            for mask in range(size):
                cell = peek_cell(row, mask)
                if cell is None:
                    cells.append(MISSING)
                    escapes += 1
                    continue
                if type(cell) is not tuple and not cell.actions:
                    cells.append(cell.target)
                    continue
                escapes += 1
                key = id(cell)
                index = spec_of.get(key)
                if index is None:
                    index = len(specs)
                    if _np is None:
                        # The fallback loop resolves escapes through
                        # the scalar cells; condition kernels would
                        # need NumPy to even build.
                        vectorizable = False
                        specs.append(_EscapeSpec("scalar", cell, state))
                    else:
                        try:
                            specs.append(self._lower_escape(
                                cell, state, codec, event_row
                            ))
                        except LookupError:
                            vectorizable = False
                            specs.append(_EscapeSpec("scalar", cell, state))
                    spec_of[key] = index
                cells.append(-2 - index)
        self.flat = array("i", cells)
        self.escapes = escapes
        self.specs = specs
        self.events = tuple(events)
        self.vectorizable = vectorizable
        self._np_flat = None

    @staticmethod
    def _lower_escape(cell, state, codec, event_row) -> _EscapeSpec:
        if type(cell) is not tuple:
            return _EscapeSpec(
                "step", cell, state, target=cell.target,
                ops=_action_ops(cell, event_row),
            )
        rungs = []
        for check, transition in cell:
            cond = (None if check is None
                    else _vector_cond(check.expr, codec, event_row))
            rungs.append((cond, transition.target,
                          _action_ops(transition, event_row), transition))
        differs = [
            [
                (left[3].target, left[3].actions)
                != (right[3].target, right[3].actions)
                for right in rungs
            ]
            for left in rungs
        ]
        return _EscapeSpec("ladder", cell, state, rungs=tuple(rungs),
                           differs=differs)

    @property
    def escape_ratio(self) -> float:
        return self.escapes / len(self.flat) if len(self.flat) else 0.0

    def np_flat(self):
        """The flat table as a NumPy array (built once, shared)."""
        if self._np_flat is None:
            self._np_flat = _np.asarray(self.flat, dtype=_np.int32)
        return self._np_flat

    def __repr__(self):
        return (f"VectorTable({self.compiled.name!r}, "
                f"states={self.n_states}, size={self.size}, "
                f"escapes={self.escapes})")


#: Memoized lowerings, keyed by monitor identity.
_TABLES = IdentityCache(limit=64)


def vector_table(compiled: CompiledMonitor) -> VectorTable:
    """The (memoized) flat lowering of ``compiled``."""
    cached = _TABLES.get(compiled)
    if cached is not None:
        return cached
    return _TABLES.put(compiled, VectorTable(compiled))


def _resolve_escape(compiled, table, state: int, mask: int, scoreboard,
                    trace_index: int, tick: int):
    """Scalar resolution of one escape lane: the transition taken.

    Mirrors the ``run_many`` inner loop exactly — same ladder
    semantics, same action application order, same error messages.
    """
    cell = table[state][mask]
    if type(cell) is tuple:
        cell = _resolve_ladder(
            cell, mask, scoreboard, compiled.ladder_exclusive,
            compiled.name, state,
        )
    if cell is None:
        raise MonitorError(
            f"monitor {compiled.name!r}: no transition enabled in "
            f"state {state} on input "
            f"{compiled.codec.decode(mask)!r} (trace {trace_index}, "
            f"tick {tick})"
        )
    for action in cell.actions:
        action.apply(scoreboard)
    return cell


def run_many_vector(
    monitor: Union[Monitor, CompiledMonitor],
    traces: Sequence[Trace],
    scoreboards: Optional[Sequence[Scoreboard]] = None,
    record_transitions: bool = False,
) -> List[MonitorResult]:
    """Drop-in for :func:`~repro.runtime.compiled.run_many`, vectorized.

    Traces are encoded once through the shared
    :meth:`~repro.logic.codec.AlphabetCodec.encode_trace` cache, then
    stepped lock-step through the flat table.  ``record_transitions``
    needs the per-tick transition *objects*, which no gather can
    produce — those runs delegate to the scalar ``run_many`` (identical
    results either way).
    """
    compiled = as_compiled(monitor)
    if scoreboards is not None and len(scoreboards) != len(traces):
        raise MonitorError(
            "run_many needs exactly one scoreboard per trace when provided"
        )
    # The fallback loop indexes plain lists; ask the cache for its
    # memoized list form directly so warm batches pay no conversion.
    return run_many_vector_encoded(
        compiled,
        compiled.codec.encode_many(traces, as_list=_np is None),
        scoreboards=scoreboards,
        record_transitions=record_transitions,
    )


def run_many_vector_encoded(
    monitor: Union[Monitor, CompiledMonitor],
    mask_arrays: Sequence[Sequence[int]],
    scoreboards: Optional[Sequence[Scoreboard]] = None,
    record_transitions: bool = False,
) -> List[MonitorResult]:
    """:func:`run_many_vector` over pre-encoded mask arrays."""
    compiled = as_compiled(monitor)
    if record_transitions:
        # Transition logging is inherently scalar: every tick needs the
        # taken Transition object, so the gather buys nothing.
        return run_many_encoded(
            compiled, mask_arrays, scoreboards=scoreboards,
            record_transitions=True,
        )
    if scoreboards is not None and len(scoreboards) != len(mask_arrays):
        raise MonitorError(
            "run_many needs exactly one scoreboard per trace when provided"
        )
    if _np is not None:
        return _run_numpy(compiled, mask_arrays, scoreboards)
    return _run_fallback(compiled, mask_arrays, scoreboards)


class _VectorAnomaly(Exception):
    """Internal signal: some escaped lane of this tick must raise.

    Anomalies (strict ``Del_evt`` under-runs, no enabled rung,
    scoreboard-dependent nondeterminism, missing cells) are detected in
    cell-group order, but ``run_many`` surfaces the failure of the
    *lowest trace index* — so detection only flags the tick, and the
    handler re-resolves every escaped lane in trace order from a
    pre-tick snapshot to raise the identical error.
    """


class _NumpyRun:
    """One lock-step batch execution (NumPy path).

    Lanes are sorted by trace length (descending) so the active set at
    any tick is a prefix and every per-tick array op is one slice.
    The scoreboard is the ``counts[event, lane]`` matrix unless the
    caller injected real scoreboards (their mutations are observable),
    in which case escapes resolve per lane through the scalar path.
    """

    def __init__(self, compiled, mask_arrays, scoreboards):
        self.compiled = compiled
        self.vt = vector_table(compiled)
        self.count = len(mask_arrays)
        self.lengths = [len(m) for m in mask_arrays]
        self.order = sorted(range(self.count), key=lambda i: -self.lengths[i])
        self.sorted_lengths = [self.lengths[i] for i in self.order]
        self.max_len = self.sorted_lengths[0] if self.count else 0
        self.mat = _np.zeros((self.count, self.max_len), dtype=_np.int32)
        for row, lane in enumerate(self.order):
            if self.lengths[lane]:
                self.mat[row, :self.lengths[lane]] = _np.asarray(
                    mask_arrays[lane], dtype=_np.int32
                )
        self.history = _np.empty((self.count, self.max_len + 1),
                                 dtype=_np.int32)
        self.history[:, 0] = compiled.initial
        self.states = _np.full(self.count, compiled.initial, dtype=_np.int32)
        self.scalar_table = _stepping_table(compiled)
        self.vector_boards = scoreboards is None and self.vt.vectorizable
        self.counts = (
            _np.zeros((max(1, len(self.vt.events)), self.count),
                      dtype=_np.int32)
            if self.vector_boards and self.vt.escapes else None
        )
        if scoreboards is not None:
            self.boards: Optional[List[Scoreboard]] = [
                scoreboards[i] for i in self.order
            ]
        elif not self.vector_boards:
            self.boards = [Scoreboard() for _ in range(self.count)]
        else:
            self.boards = None

    # -- scalar replay -----------------------------------------------------
    def _board_for(self, row: int) -> Scoreboard:
        """A real scoreboard equal to lane ``row``'s counts column."""
        board = Scoreboard()
        if self.counts is not None:
            board.restore({
                event: int(self.counts[index, row])
                for index, event in enumerate(self.vt.events)
            })
        return board

    def _raise_in_trace_order(self, escaped, snapshot, tick, live):
        """Re-resolve every escaped lane scalar, lowest trace index
        first, raising the exact error ``run_many`` would surface.

        ``snapshot`` restores the escaped lanes' counts columns to
        their pre-tick state (group processing may have mutated some
        before the anomaly was detected); each lane then replays on a
        fresh scoreboard built from its own column, so succeeding lanes
        cannot double-apply actions."""
        if self.counts is not None and snapshot is not None:
            self.counts[:, escaped] = snapshot
        rows = sorted((int(row) for row in escaped),
                      key=self.order.__getitem__)
        for row in rows:
            _resolve_escape(
                self.compiled, self.scalar_table, int(live[row]),
                int(self.mat[row, tick]), self._board_for(row),
                self.order[row], tick,
            )
        raise MonitorError(  # pragma: no cover - detection was certain
            f"monitor {self.compiled.name!r}: internal vector anomaly at "
            f"tick {tick} did not reproduce under scalar replay"
        )

    # -- vectorized scoreboard ops ----------------------------------------
    def _apply_ops(self, ops, group) -> None:
        counts = self.counts
        for op, row_index in ops:
            if op == "add":
                counts[row_index, group] += 1
            else:
                column = counts[row_index, group]
                if (column <= 0).any():
                    # Strict Del_evt under-run somewhere in the group.
                    raise _VectorAnomaly
                counts[row_index, group] = column - 1

    def _ladder_exclusive(self, spec, group, tick, nxt) -> None:
        remaining = group
        masks = self.mat[group, tick]
        for cond, target, ops, _ in spec.rungs:
            if remaining.size == 0:
                return
            if cond is None:
                chosen = remaining
                remaining = remaining[:0]
            else:
                sel = cond(self.counts[:, remaining], masks)
                chosen = remaining[sel]
                remaining = remaining[~sel]
                masks = masks[~sel]
            if chosen.size:
                if ops:
                    self._apply_ops(ops, chosen)
                nxt[chosen] = target
        if remaining.size:
            # No rung passed: an incomplete monitor.
            raise _VectorAnomaly

    def _ladder_full_scan(self, spec, group, tick, nxt) -> None:
        masks = self.mat[group, tick]
        counts_sub = self.counts[:, group]
        rungs = spec.rungs
        passing = [
            (_np.ones(group.shape, bool) if cond is None
             else cond(counts_sub, masks))
            for cond, _, _, _ in rungs
        ]
        first = _np.full(group.shape, -1, dtype=_np.int32)
        for index in range(len(rungs)):
            first = _np.where((first == -1) & passing[index], index, first)
        if (first == -1).any():
            raise _VectorAnomaly
        differs = spec.differs
        for later in range(1, len(rungs)):
            conflicting = passing[later] & (first != later)
            if conflicting.any():
                for row in _np.nonzero(conflicting)[0]:
                    if differs[int(first[row])][later]:
                        # Scoreboard-dependent nondeterminism: the full
                        # scan the interpreted engine runs would raise.
                        raise _VectorAnomaly
        for index, (_, target, ops, _) in enumerate(rungs):
            chosen = group[first == index]
            if chosen.size:
                if ops:
                    self._apply_ops(ops, chosen)
                nxt[chosen] = target

    # -- the tick loop -----------------------------------------------------
    def run(self) -> List[MonitorResult]:
        compiled = self.compiled
        vt = self.vt
        flat = vt.np_flat()
        size = vt.size
        specs = vt.specs
        exclusive = compiled.ladder_exclusive
        has_escapes = vt.escapes > 0
        scalar_escapes = self.boards is not None
        active = self.count
        for tick in range(self.max_len):
            while active > 0 and self.sorted_lengths[active - 1] <= tick:
                active -= 1
            live = self.states[:active]
            index = live * size
            index += self.mat[:active, tick]
            nxt = flat.take(index)
            if has_escapes:
                escaped = _np.nonzero(nxt < 0)[0]
                if escaped.size:
                    if scalar_escapes:
                        # Trace-index order: independent boards make
                        # the results order-free, but *which* lane's
                        # error surfaces first must match run_many.
                        for row in sorted((int(r) for r in escaped),
                                          key=self.order.__getitem__):
                            transition = _resolve_escape(
                                compiled, self.scalar_table, int(live[row]),
                                int(self.mat[row, tick]), self.boards[row],
                                self.order[row], tick,
                            )
                            nxt[row] = transition.target
                    else:
                        snapshot = (self.counts[:, escaped].copy()
                                    if self.counts is not None else None)
                        try:
                            codes = nxt.take(escaped)
                            for code in _np.unique(codes):
                                group = escaped[codes == code]
                                if code == MISSING:
                                    raise _VectorAnomaly
                                spec = specs[-2 - int(code)]
                                if spec.kind == "step":
                                    if spec.ops:
                                        self._apply_ops(spec.ops, group)
                                    nxt[group] = spec.target
                                elif exclusive:
                                    self._ladder_exclusive(
                                        spec, group, tick, nxt
                                    )
                                else:
                                    self._ladder_full_scan(
                                        spec, group, tick, nxt
                                    )
                        except _VectorAnomaly:
                            self._raise_in_trace_order(
                                escaped, snapshot, tick, live
                            )
            self.states[:active] = nxt
            self.history[:active, tick + 1] = nxt
        results: List[Optional[MonitorResult]] = [None] * self.count
        final = vt.final
        for row, lane in enumerate(self.order):
            length = self.lengths[lane]
            lane_history = self.history[row, :length + 1]
            detections = _np.nonzero(lane_history[1:] == final)[0].tolist()
            results[lane] = MonitorResult(
                compiled.name, lane_history.tolist(), detections, length
            )
        return results


def _run_numpy(compiled, mask_arrays, scoreboards) -> List[MonitorResult]:
    count = len(mask_arrays)
    if count == 0 or max(len(m) for m in mask_arrays) == 0:
        return [
            MonitorResult(compiled.name, [compiled.initial], [], 0)
            for _ in range(count)
        ]
    return _NumpyRun(compiled, mask_arrays, scoreboards).run()


def _run_fallback(compiled, mask_arrays, scoreboards) -> List[MonitorResult]:
    """Pure-Python flat-table lock-step (NumPy absent) — same contract."""
    count = len(mask_arrays)
    vt = vector_table(compiled)
    flat = vt.flat
    size = vt.size
    final = vt.final
    scalar_table = _stepping_table(compiled)
    masks = [
        stream if type(stream) is list else list(stream)
        for stream in mask_arrays
    ]
    lengths = [len(m) for m in masks]
    states = [compiled.initial] * count
    histories = [[compiled.initial] * (length + 1) for length in lengths]
    detections: List[List[int]] = [[] for _ in range(count)]
    boards: List[Optional[Scoreboard]] = (
        list(scoreboards) if scoreboards is not None else [None] * count
    )
    active = [index for index in range(count) if lengths[index] > 0]
    tick = 0
    while active:
        surviving: List[int] = []
        for index in active:
            mask = masks[index][tick]
            state = flat[states[index] * size + mask]
            if state < 0:
                board = boards[index]
                if board is None:
                    board = Scoreboard()
                    boards[index] = board
                state = _resolve_escape(
                    compiled, scalar_table, states[index], mask, board,
                    index, tick,
                ).target
            states[index] = state
            histories[index][tick + 1] = state
            if state == final:
                detections[index].append(tick)
            if tick + 1 < lengths[index]:
                surviving.append(index)
        active = surviving
        tick += 1
    return [
        MonitorResult(compiled.name, histories[index], detections[index],
                      lengths[index])
        for index in range(count)
    ]


class VectorEngine(CompiledEngine):
    """A compiled engine with a chunked flat-table fast path.

    Scalar ``step``/``feed``/two-phase semantics are inherited
    unchanged from :class:`CompiledEngine`; :meth:`feed_masks` consumes
    a pre-encoded chunk of ticks in one tight loop over the flat
    integer table — the streaming checker's vector mode batches its
    input into chunks and pushes them through here, skipping three
    Python method calls per tick per monitor.
    """

    def __init__(self, monitor, scoreboard: Optional[Scoreboard] = None,
                 record_history: bool = True):
        super().__init__(monitor, scoreboard=scoreboard,
                         record_history=record_history)
        self._vt = vector_table(self._compiled)

    def feed_masks(self, masks: Sequence[int]) -> List[int]:
        """Consume one chunk of encoded ticks; return detection offsets.

        Offsets are relative to the first tick of the chunk.  State,
        tick count and scoreboard evolve exactly as ``len(masks)``
        ``step`` calls would — including on failure: an escape that
        cannot resolve raises the same error ``step`` raises, with the
        engine left exactly where per-tick stepping would have left it
        (state and tick at the failing element, earlier elements
        committed).  Per-tick history recording is not supported
        (streaming engines run ``record_history=False``).
        """
        if self._record_history:
            raise MonitorError(
                "feed_masks is the streaming fast path; construct the "
                "engine with record_history=False (step() records "
                "history tick by tick)"
            )
        vt = self._vt
        flat = vt.flat
        size = vt.size
        final = vt.final
        compiled = self._compiled
        scalar_table = self._table
        scoreboard = self._scoreboard
        exclusive = self._exclusive
        state = self._state
        detections: List[int] = []
        for offset, mask in enumerate(masks):
            nxt = flat[state * size + mask]
            if nxt < 0:
                try:
                    cell = scalar_table[state][mask]
                    if type(cell) is tuple:
                        cell = _resolve_ladder(
                            cell, mask, scoreboard, exclusive,
                            compiled.name, state,
                        )
                    if cell is None:
                        raise MonitorError(
                            f"monitor {compiled.name!r}: no transition "
                            f"enabled in state {state} on input "
                            f"{compiled.codec.decode(mask)!r} "
                            f"(scoreboard {scoreboard!r})"
                        )
                    for action in cell.actions:
                        action.apply(scoreboard)
                except Exception:
                    # Leave the engine where step-by-step stepping
                    # would have: at the failing tick.
                    self._state = state
                    self._tick += offset
                    raise
                nxt = cell.target
            state = nxt
            if state == final:
                detections.append(offset)
        self._state = state
        self._tick += len(masks)
        return detections
