"""Compiled monitor runtime: table-dispatch stepping and batch execution.

The interpreted :class:`~repro.monitor.engine.MonitorEngine` walks the
guard expression trees of every outgoing transition on every tick.
This package compiles a monitor once into integer-indexed dispatch
tables — the per-valuation enumeration the synthesis algorithm already
performs, made persistent — so the hot loop is a list lookup:

* :class:`~repro.runtime.compiled.CompiledMonitor` — the dense
  ``(state, valuation_mask) -> cell`` table over an
  :class:`~repro.logic.codec.AlphabetCodec` symbol ordering, with a
  compiled-guard check ladder in the cells whose move depends on the
  dynamic scoreboard;
* :func:`~repro.runtime.compiled.compile_monitor` — lower any
  :class:`~repro.monitor.automaton.Monitor` (dense ``Tr`` output,
  symbolic, or hand-built) to a :class:`CompiledMonitor`;
* :class:`~repro.runtime.compiled.CompiledEngine` — same
  ``step``/``feed``/``result`` contract as ``MonitorEngine`` (including
  two-phase ``enabled_transition``/``commit``), on the compiled table;
* :func:`~repro.runtime.compiled.run_compiled` /
  :func:`~repro.runtime.compiled.run_many` — whole-trace and batched
  lock-step execution;
* :mod:`repro.runtime.vector` — the trace-parallel batch kernel:
  check-free cells lowered to one flat integer array stepped with
  NumPy fancy indexing (pure-Python fallback when NumPy is absent),
  escape lanes resolved through the scalar dispatch above;
* :mod:`repro.runtime.engines` — the backend registry and the
  ``engine="auto"`` execution planner: every entry point resolves
  backend names and capability checks through it, and a new backend
  (e.g. a C table stepper) is one :func:`register_backend` call.

The interpreted engine remains the reference semantics; equivalence is
enforced by property tests (``tests/test_properties.py``) and the
vector differential suite.
"""

from repro.runtime.compiled import (
    CompiledEngine,
    CompiledMonitor,
    as_compiled,
    compile_monitor,
    run_compiled,
    run_many,
    run_many_encoded,
)
from repro.runtime.engines import (
    AUTO,
    EngineBackend,
    ExecutionPlan,
    Workload,
    engine_choices,
    plan_execution,
    register_backend,
)

#: Vector-kernel names resolved lazily (PEP 562): importing the vector
#: module pulls in NumPy when present, and scalar-only users — the CLI
#: with --engine compiled, sharded worker spawns — should not pay that
#: import for a kernel they never touch.
_VECTOR_EXPORTS = (
    "VectorEngine",
    "run_many_vector",
    "run_many_vector_encoded",
    "vector_table",
)


def __getattr__(name):
    if name in _VECTOR_EXPORTS:
        from repro.runtime import vector

        return getattr(vector, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AUTO",
    "CompiledEngine",
    "CompiledMonitor",
    "EngineBackend",
    "ExecutionPlan",
    "VectorEngine",
    "Workload",
    "engine_choices",
    "plan_execution",
    "register_backend",
    "as_compiled",
    "compile_monitor",
    "run_compiled",
    "run_many",
    "run_many_encoded",
    "run_many_vector",
    "run_many_vector_encoded",
    "vector_table",
]
