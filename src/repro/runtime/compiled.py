"""Dense-table compiled monitors and the table-dispatch engine.

``Tr`` already enumerates every valuation of the restricted alphabet
when it builds the KMP-style transition table; a
:class:`CompiledMonitor` makes that enumeration persistent.  Each state
owns a dense row of ``2^|Sigma|`` cells indexed by the valuation's
bitmask (:class:`~repro.logic.codec.AlphabetCodec` fixes the
ordering):

* a cell that does not depend on the dynamic scoreboard holds its
  :class:`~repro.monitor.automaton.Transition` directly — stepping is
  two list lookups;
* a cell whose move is data-dependent (``Chk_evt`` guards) holds a
  *check ladder*: ``(compiled_check, transition)`` rungs scanned in
  order, the first rung whose compiled check passes firing (``None``
  marks the unconditional floor).

:func:`compile_monitor` lowers any monitor — dense ``Tr`` output,
symbolic-compressed, or hand-built — by splitting every guard into an
input part (precomputed into a truth bitmap over all masks) and a
scoreboard-dependent residue (compiled to a closure).
:mod:`repro.synthesis.tr` also emits compiled monitors *directly* from
the ladder enumeration, skipping minterm guard construction entirely.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

from repro.cache import IdentityCache
from repro.errors import MonitorError
from repro.logic.codec import AlphabetCodec
from repro.logic.expr import And, Expr, all_of, scoreboard_checks_of
from repro.logic.valuation import Valuation
from repro.monitor.automaton import Monitor, Transition
from repro.monitor.engine import EngineBase, MonitorResult
from repro.monitor.scoreboard import Scoreboard
from repro.semantics.run import Trace
from repro.slots import SlotPickle

__all__ = [
    "CompactRow",
    "CompiledCheck",
    "CompiledMonitor",
    "CompiledEngine",
    "as_compiled",
    "cell_rungs",
    "compile_monitor",
    "lower_monitor",
    "peek_cell",
    "row_cells",
    "run_compiled",
    "run_many",
    "run_many_encoded",
]

#: One dispatch cell: a transition (unconditional), a check ladder of
#: ``(compiled_check_or_None, transition)`` rungs, or ``None`` (no
#: transition enabled — an incomplete monitor).
Cell = Union[Transition, Tuple[Tuple[Optional[Callable], Transition], ...], None]


class CompactRow(dict):
    """A sparse dispatch row: explicit cells plus one default cell.

    After alphabet pruning most masks of a state share a single target
    (the self-loop absorbing irrelevant inputs), so a dense
    ``2^|Sigma|``-cell row wastes memory on repeats.  A ``CompactRow``
    stores only the exceptional ``mask -> cell`` entries; every other
    mask resolves to ``default`` through ``__missing__``, which keeps
    the hot-path ``table[state][mask]`` expression working unchanged
    for both row shapes (dispatch stays transparent to the engines).

    ``__missing__`` *memoizes*: the first lookup of a default mask
    inserts it, so every later lookup takes the C-level dict hit path
    instead of a Python call — steady-state stepping costs within a
    few percent of dense list indexing, while resident size stays
    bounded by the masks a workload actually exercises.  Memoized
    entries are semantically invisible (same cell object) and are
    shed on pickling; cold-path scans should use :meth:`peek` /
    :func:`peek_cell`, which never memoize.

    Size accounting (:meth:`explicit_count`, ``CompiledMonitor.
    table_cells``) counts only the genuine exceptions plus the
    default, never memoized repeats.
    """

    __slots__ = ("default",)

    def __init__(self, exceptions, default: Cell):
        super().__init__(exceptions)
        self.default = default

    def __missing__(self, mask: int) -> Cell:
        default = self.default
        self[mask] = default
        return default

    def peek(self, mask: int) -> Cell:
        """The cell for ``mask`` without memoizing a default hit."""
        return self.get(mask, self.default)

    def explicit(self) -> dict:
        """The genuine ``mask -> cell`` exceptions (memoized default
        entries excluded — ``compact_row`` never stores the default
        explicitly, so equality with the default identifies them)."""
        default = self.default
        return {
            mask: cell for mask, cell in self.items() if cell != default
        }

    def explicit_count(self) -> int:
        default = self.default
        return sum(1 for cell in self.values() if cell != default)

    def __reduce__(self):
        # Group exception masks by cell: a row's exceptions repeat a
        # handful of distinct cells, so pickling ``(cell, masks...)``
        # groups stores each cell reference once instead of once per
        # mask — about half the per-entry cost of pickling the dict.
        groups: dict = {}
        for mask, cell in sorted(self.explicit().items()):
            groups.setdefault(cell, []).append(mask)
        payload = tuple(
            (cell, tuple(masks)) for cell, masks in groups.items()
        )
        return (_rebuild_compact_row, (payload, self.default))

    def __eq__(self, other):
        """Logical row equality: same default, same genuine exceptions.

        ``dict.__eq__`` would ignore the default slot (and count
        memoized repeats), calling behaviourally different rows equal.
        """
        if isinstance(other, CompactRow):
            return (self.default == other.default
                    and self.explicit() == other.explicit())
        return NotImplemented

    def __ne__(self, other):
        equal = self.__eq__(other)
        if equal is NotImplemented:
            return equal
        return not equal

    __hash__ = None  # mutable (memoizing), like the dict base

    def __repr__(self):
        return (f"CompactRow({self.explicit_count()} explicit, "
                f"default={self.default!r})")


def _rebuild_compact_row(payload, default: Cell) -> "CompactRow":
    """Unpickle hook for :meth:`CompactRow.__reduce__`."""
    exceptions = {}
    for cell, masks in payload:
        for mask in masks:
            exceptions[mask] = cell
    return CompactRow(exceptions, default)


def peek_cell(row, mask: int) -> Cell:
    """Read one cell of a dense or compact row without memoizing."""
    if isinstance(row, CompactRow):
        return row.peek(mask)
    return row[mask]


def row_cells(row) -> Iterable[Cell]:
    """Every distinct cell slot of a dispatch row, dense or compact."""
    if isinstance(row, CompactRow):
        yield row.default
        yield from row.explicit().values()
    else:
        yield from row


def map_table_cells(compiled: "CompiledMonitor", convert) -> list:
    """A new table with ``convert`` applied to every cell slot.

    Preserves each row's shape (dense list or :class:`CompactRow` with
    the converted default).  ``convert`` receives each *distinct* cell
    slot; callers that intern converted cells should memoize inside
    ``convert`` (cells are shared across slots by identity).  This is
    the one rebuild loop the table-rewriting passes (ladder hardening,
    carrier slimming) share, so a new row representation only needs
    teaching here.
    """
    table = []
    for row in compiled._table:
        if isinstance(row, CompactRow):
            table.append(CompactRow(
                {mask: convert(cell)
                 for mask, cell in row.explicit().items()},
                convert(row.default),
            ))
        else:
            table.append([convert(cell) for cell in row])
    return table


class CompiledCheck:
    """A compiled scoreboard-check closure that survives pickling.

    ``Expr.compile`` returns a plain closure, which cannot cross
    process boundaries; the sharded trace pipeline ships whole compiled
    monitors to worker processes.  This wrapper keeps the source
    expression and codec alongside the closure and recompiles on
    unpickle, so a check ladder pickles as data while calls stay a
    single indirection.
    """

    __slots__ = ("expr", "codec", "_fn")

    def __init__(self, expr: Expr, codec: AlphabetCodec):
        self.expr = expr
        self.codec = codec
        self._fn = expr.compile(codec)

    def __call__(self, mask: int, scoreboard) -> bool:
        return self._fn(mask, scoreboard)

    def __reduce__(self):
        return (CompiledCheck, (self.expr, self.codec))

    def __repr__(self):
        return f"CompiledCheck({self.expr!r})"


class CompiledMonitor(SlotPickle):
    """A monitor lowered to dense ``(state, mask) -> cell`` dispatch tables.

    Same 5-tuple metadata as :class:`~repro.monitor.automaton.Monitor`
    (states are ``0..n_states-1``, ``initial``/``final`` indices), but
    the transition function is a list-of-lists: ``table[state][mask]``
    where ``mask`` encodes the input valuation under ``codec``.
    """

    __slots__ = ("name", "n_states", "initial", "final", "codec",
                 "alphabet", "props", "transitions", "source",
                 "ladder_exclusive", "_table")

    def __init__(
        self,
        name: str,
        n_states: int,
        initial: int,
        final: int,
        codec: AlphabetCodec,
        table: Sequence[Sequence[Cell]],
        transitions: Iterable[Transition],
        props: Iterable[str] = (),
        source: Optional[Monitor] = None,
        ladder_exclusive: bool = False,
    ):
        if n_states <= 0:
            raise MonitorError("compiled monitor needs at least one state")
        if not (0 <= initial < n_states) or not (0 <= final < n_states):
            raise MonitorError("initial/final state out of range")
        if len(table) != n_states:
            raise MonitorError(
                f"table has {len(table)} rows for {n_states} states"
            )
        for row in table:
            if isinstance(row, CompactRow):
                bad = [mask for mask in row if not 0 <= mask < codec.size]
                if bad:
                    raise MonitorError(
                        f"compact row holds masks {bad} outside codec "
                        f"size {codec.size}"
                    )
            elif len(row) != codec.size:
                raise MonitorError(
                    f"table row of {len(row)} cells for codec size "
                    f"{codec.size}"
                )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "n_states", int(n_states))
        object.__setattr__(self, "initial", int(initial))
        object.__setattr__(self, "final", int(final))
        object.__setattr__(self, "codec", codec)
        object.__setattr__(self, "alphabet", frozenset(codec.symbols))
        object.__setattr__(self, "props", frozenset(props))
        object.__setattr__(self, "transitions", tuple(transitions))
        #: the interpreted Monitor this was lowered from, when known —
        #: lets coverage collectors match compiled runs to their automaton.
        object.__setattr__(self, "source", source)
        #: True when rung order *is* the semantics (the synthesis
        #: while-loop: first passing rung wins, by construction).
        #: False when rung guards are self-excluding — the ladder is
        #: then scanned in full so that scoreboard-dependent
        #: nondeterminism raises exactly as the interpreted engine does.
        object.__setattr__(self, "ladder_exclusive", bool(ladder_exclusive))
        object.__setattr__(self, "_table", [
            CompactRow(row.explicit(), row.default)
            if isinstance(row, CompactRow) else list(row)
            for row in table
        ])

    def __setattr__(self, name, value):
        raise AttributeError("CompiledMonitor is immutable")

    def without_source(self) -> "CompiledMonitor":
        """A copy that shares the table but drops the interpreted source.

        The source automaton exists for in-process coverage matching;
        the sharded runner strips it before shipping monitors to
        worker processes, roughly halving the pickle payload.  Plain
        pickling (e.g. an on-disk compilation cache) keeps the source.
        """
        if self.source is None:
            return self
        clone = CompiledMonitor.__new__(CompiledMonitor)
        state = self.__getstate__()
        state["source"] = None
        clone.__setstate__(state)
        return clone

    # -- structure -------------------------------------------------------
    @property
    def states(self) -> range:
        return range(self.n_states)

    @property
    def table(self) -> Tuple[Tuple[Cell, ...], ...]:
        """An immutable *dense* view of the dispatch table.

        Compiled monitors are memoized and shared by banks and
        networks, so the live table is never handed out — mutating
        this copy cannot corrupt other runs.  Compact rows are
        expanded, so the view always has ``codec.size`` cells per row.
        """
        masks = range(self.codec.size)
        return tuple(
            tuple(peek_cell(row, mask) for mask in masks)
            for row in self._table
        )

    @property
    def is_compact(self) -> bool:
        """Does any row use the sparse default-cell encoding?"""
        return any(isinstance(row, CompactRow) for row in self._table)

    def table_cells(self) -> int:
        """Cells the table actually stores (dense rows count in full,
        compact rows count their explicit cells plus the default)."""
        return sum(
            row.explicit_count() + 1 if isinstance(row, CompactRow)
            else len(row)
            for row in self._table
        )

    def transition_count(self) -> int:
        return len(self.transitions)

    def has_actions(self) -> bool:
        return any(t.actions for t in self.transitions)

    def has_checks(self) -> bool:
        """Does any cell fall back to scoreboard-dependent dispatch?"""
        return any(
            isinstance(cell, tuple)
            for row in self._table for cell in row_cells(row)
        )

    def cell(self, state: int, mask: int) -> Cell:
        """One cell, without memoizing a compact row's default hit —
        table scans (synthesizers, pruning) stay allocation-free."""
        return peek_cell(self._table[state], mask)

    def events(self) -> frozenset:
        return self.alphabet - self.props

    # -- dispatch --------------------------------------------------------
    def dispatch(self, state: int, mask: int,
                 scoreboard: Optional[Scoreboard] = None) -> Transition:
        """The unique transition for ``(state, mask, scoreboard)``."""
        cell = self._table[state][mask]
        if type(cell) is tuple:
            cell = _resolve_ladder(
                cell, mask, scoreboard, self.ladder_exclusive,
                self.name, state,
            )
        if cell is not None:
            return cell
        raise MonitorError(
            f"monitor {self.name!r}: no transition enabled in state "
            f"{state} on input {self.codec.decode(mask)!r} "
            f"(scoreboard {scoreboard!r})"
        )

    def __repr__(self):
        return (
            f"CompiledMonitor({self.name!r}, states={self.n_states}, "
            f"alphabet={len(self.codec)}, cells={self.table_cells()}"
            f"{', compact' if self.is_compact else ''})"
        )


def _resolve_ladder(
    cell: Tuple[Tuple[Optional[Callable], Transition], ...],
    mask: int,
    scoreboard: Optional[Scoreboard],
    exclusive: bool,
    monitor_name: str,
    state: int,
) -> Optional[Transition]:
    """Resolve a check-ladder cell to its transition (or ``None``).

    ``exclusive`` ladders (direct synthesis output) fire the first
    passing rung — rung order encodes the while-loop descent.
    Non-exclusive ladders (lowered from guard lists) are scanned in
    full: two passing rungs that disagree on target or actions are the
    scoreboard-dependent nondeterminism the interpreted engine reports,
    so the compiled backend raises the same :class:`MonitorError`.
    """
    if exclusive:
        for check, transition in cell:
            if check is None or check(mask, scoreboard):
                return transition
        return None
    chosen: Optional[Transition] = None
    for check, transition in cell:
        if check is None or check(mask, scoreboard):
            if chosen is None:
                chosen = transition
            elif (transition.target, transition.actions) != (
                chosen.target, chosen.actions
            ):
                raise MonitorError(
                    f"monitor {monitor_name!r}: nondeterministic in state "
                    f"{state} on valuation mask {mask} "
                    f"(scoreboard {scoreboard!r}): {chosen.label()} vs "
                    f"{transition.label()}"
                )
    return chosen


def _split_guard(guard: Expr) -> Tuple[Expr, Expr]:
    """Split a guard conjunction into (input part, scoreboard residue).

    Top-level ``And`` conjuncts that never mention ``Chk_evt`` form the
    input part (its truth is a pure function of the mask and can be
    tabulated); everything else is the residue, compiled to a closure
    evaluated per step.  A non-conjunctive guard mixing the two kinds
    lands wholly in the residue — still correct, just not tabulated.
    """
    parts = guard.args if isinstance(guard, And) else (guard,)
    input_parts: List[Expr] = []
    residue_parts: List[Expr] = []
    for part in parts:
        if scoreboard_checks_of(part):
            residue_parts.append(part)
        else:
            input_parts.append(part)
    return all_of(input_parts), all_of(residue_parts)


def lower_monitor(
    monitor: Monitor, codec: AlphabetCodec
) -> List[List[Tuple[int, Optional[Expr], Transition]]]:
    """Split every guard into tabulated and runtime parts, per state.

    Each entry is ``(input truth bitmap, scoreboard residue, transition)``:
    the bitmap has bit ``m`` set iff the guard's input part holds under
    valuation mask ``m``; the residue is the ``Chk_evt``-dependent
    remainder (``None`` when the guard is scoreboard-free).  Guards
    whose residue is constant false are dropped — they can never fire.
    Shared by :func:`compile_monitor` and the table-driven Python
    code generator so the two lowerings cannot drift apart.
    """
    lowered: List[List[Tuple[int, Optional[Expr], Transition]]] = []
    for state in monitor.states:
        entries: List[Tuple[int, Optional[Expr], Transition]] = []
        for transition in monitor.transitions_from(state):
            input_part, residue = _split_guard(transition.guard)
            bitmap = codec.truth_table(input_part)
            if residue.atoms():
                entries.append((bitmap, residue, transition))
            elif residue.evaluate(Valuation()):
                entries.append((bitmap, None, transition))
        lowered.append(entries)
    return lowered


def cell_rungs(
    entries: Sequence[Tuple[int, Optional[Expr], Transition]],
    mask: int,
    monitor_name: str,
    state: int,
) -> List[Tuple[Optional[Expr], Transition]]:
    """The check ladder for one ``(state, mask)`` cell.

    Keeps declaration order (the interpreted engine's first-enabled
    selection) and every rung — check-dependent rungs shadowed by an
    earlier unconditional rung are retained so the runtime full scan
    can report scoreboard-dependent nondeterminism exactly as the
    interpreted engine would.  *Statically certain* nondeterminism —
    two always-enabled transitions for the same valuation disagreeing
    on target or actions — is rejected here, at compile time.
    """
    bit = 1 << mask
    rungs = [
        (residue, transition)
        for bitmap, residue, transition in entries
        if bitmap & bit
    ]
    for index, (residue, transition) in enumerate(rungs):
        if residue is not None:
            continue
        for later_residue, later in rungs[index + 1:]:
            if later_residue is None and (
                (later.target, later.actions)
                != (transition.target, transition.actions)
            ):
                raise MonitorError(
                    f"monitor {monitor_name!r}: nondeterministic in state "
                    f"{state} on valuation mask {mask}: "
                    f"{transition.label()} vs {later.label()}"
                )
        break
    return rungs


def compile_monitor(monitor: Monitor) -> CompiledMonitor:
    """Lower a monitor to dense table dispatch.

    Works for any guard shape: the input part of each guard is
    evaluated once per valuation mask at compile time (the same
    ``2^|Sigma|`` enumeration ``Tr`` performs during synthesis); only
    ``Chk_evt``-dependent residues survive to run time, as compiled
    closures in check-ladder cells.  Rung order within a cell is the
    monitor's transition declaration order, matching the interpreted
    engine's first-enabled selection.

    Determinism: two always-enabled transitions disagreeing on the
    same valuation raise :class:`~repro.errors.MonitorError` here, at
    compile time.  Overlap that only materialises for some scoreboard
    state (two ``Chk_evt`` rungs both true at run time) raises the
    interpreted engine's nondeterminism error at run time — ladders of
    lowered monitors are scanned in full, not first-match.
    """
    codec = AlphabetCodec(monitor.alphabet)
    lowered = lower_monitor(monitor, codec)
    closure_cache: dict = {}
    # Equal check ladders are interned to one shared tuple: adjacent
    # masks of a state overwhelmingly produce the same ladder, so
    # interning shrinks the resident table and lets pickle memoize one
    # copy per distinct ladder instead of one per cell.
    cell_cache: dict = {}
    table: List[List[Cell]] = []
    for state in monitor.states:
        entries = lowered[state]
        row: List[Cell] = []
        for mask in range(codec.size):
            rungs = cell_rungs(entries, mask, monitor.name, state)
            if not rungs:
                row.append(None)
            elif len(rungs) == 1 and rungs[0][0] is None:
                row.append(rungs[0][1])
            else:
                compiled_rungs = []
                for residue, transition in rungs:
                    if residue is None:
                        check = None
                    else:
                        check = closure_cache.get(residue)
                        if check is None:
                            check = CompiledCheck(residue, codec)
                            closure_cache[residue] = check
                    compiled_rungs.append((check, transition))
                cell = tuple(compiled_rungs)
                row.append(cell_cache.setdefault(cell, cell))
        table.append(row)
    return CompiledMonitor(
        monitor.name,
        n_states=monitor.n_states,
        initial=monitor.initial,
        final=monitor.final,
        codec=codec,
        table=table,
        transitions=monitor.transitions,
        props=monitor.props,
        source=monitor,
    )


def as_compiled(monitor: Union[Monitor, CompiledMonitor]) -> CompiledMonitor:
    """Coerce to a compiled monitor (identity when already compiled)."""
    if isinstance(monitor, CompiledMonitor):
        return monitor
    return compile_monitor(monitor)


#: Compact tables up to this many dense cells re-expand to plain lists
#: inside long-running engines — list indexing is the fastest dispatch
#: and the expansion is cheaper than the table's own construction was.
_DENSE_STEP_CELLS = 1 << 15


#: Memoized expansions, keyed by monitor identity.
_STEP_TABLES = IdentityCache(limit=64)


def _stepping_table(compiled: CompiledMonitor):
    """The hot-loop view of a monitor's table.

    Compact rows trade a few percent of dispatch speed for resident
    and serialized size; an engine about to take millions of steps
    wants the speed back.  Small compact tables are expanded to dense
    lists (cells shared where possible) while the monitor keeps its
    compact form for storage and shipping; big tables stay compact —
    expansion would defeat their reason to exist.  While rebuilding,
    ladder rungs shed their :class:`CompiledCheck` pickling wrapper
    for the raw compiled closure — one less call frame per check
    evaluation.  Expansions are memoized per monitor, so banks and
    repeated batch calls pay once.
    """
    table = compiled._table
    if not compiled.is_compact:
        return table
    if compiled.n_states * compiled.codec.size > _DENSE_STEP_CELLS:
        return table
    cached = _STEP_TABLES.get(compiled)
    if cached is not None:
        return cached
    unwrapped: dict = {}

    def fast_cell(cell: Cell) -> Cell:
        if type(cell) is not tuple:
            return cell
        cached = unwrapped.get(id(cell))
        if cached is None:
            cached = tuple(
                (check._fn if isinstance(check, CompiledCheck) else check,
                 transition)
                for check, transition in cell
            )
            unwrapped[id(cell)] = cached
        return cached

    masks = range(compiled.codec.size)
    expanded = [
        [fast_cell(peek_cell(row, mask)) for mask in masks]
        for row in table
    ]
    return _STEP_TABLES.put(compiled, expanded)


class CompiledEngine(EngineBase):
    """Table-dispatch monitor execution, drop-in for ``MonitorEngine``.

    Same observable contract — ``step``/``feed``/``result``,
    ``detections``, ``transition_log``, and the two-phase
    ``enabled_transition``/``commit`` split that multi-clock networks
    and assertion checkers rely on (inherited from the shared
    :class:`~repro.monitor.engine.EngineBase`) — but each step is a
    dense table lookup instead of a guard-tree walk.  Accepts a
    ``Monitor`` (compiled on construction) or a prebuilt
    ``CompiledMonitor`` (shareable across engines; compilation cost
    paid once).
    """

    def __init__(self, monitor: Union[Monitor, CompiledMonitor],
                 scoreboard: Optional[Scoreboard] = None,
                 record_history: bool = True):
        compiled = as_compiled(monitor)
        super().__init__(compiled, scoreboard, record_history=record_history)
        self._compiled = compiled
        self._table = _stepping_table(compiled)
        self._encode = compiled.codec.encode
        self._exclusive = compiled.ladder_exclusive

    @property
    def monitor(self) -> CompiledMonitor:
        return self._compiled

    def enabled_transition(self, valuation: Valuation) -> Transition:
        """The unique transition enabled by ``valuation`` right now."""
        return self._compiled.dispatch(
            self._state, self._encode(valuation), self._scoreboard
        )

    def step(self, valuation: Valuation) -> int:
        """Consume one trace element; return the new state."""
        return self.step_mask(self._encode(valuation))

    def step_mask(self, mask: int) -> int:
        """Consume one pre-encoded valuation mask; return the new state.

        The mask form of :meth:`step`: bank streaming encodes a tick
        once per distinct member alphabet and steps every member
        through here, instead of once per member.
        """
        cell = self._table[self._state][mask]
        if type(cell) is tuple:
            cell = _resolve_ladder(
                cell, mask, self._scoreboard, self._exclusive,
                self._compiled.name, self._state,
            )
        if cell is None:
            raise MonitorError(
                f"monitor {self._compiled.name!r}: no transition enabled "
                f"in state {self._state} on input "
                f"{self._compiled.codec.decode(mask)!r} "
                f"(scoreboard {self._scoreboard!r})"
            )
        return self.commit(cell)


def run_compiled(
    monitor: Union[Monitor, CompiledMonitor],
    trace: Trace,
    scoreboard: Optional[Scoreboard] = None,
) -> MonitorResult:
    """Run the compiled engine over a whole trace.

    Drop-in for :func:`~repro.monitor.engine.run_monitor`; produces an
    identical :class:`~repro.monitor.engine.MonitorResult`.
    """
    engine = CompiledEngine(monitor, scoreboard=scoreboard)
    engine.feed(trace)
    return engine.result()


def run_many(
    monitor: Union[Monitor, CompiledMonitor],
    traces: Sequence[Trace],
    scoreboards: Optional[Sequence[Scoreboard]] = None,
    record_transitions: bool = False,
) -> List[MonitorResult]:
    """Step many traces through one monitor in lock-step.

    The monitor is compiled once; every trace is pre-encoded to mask
    arrays and the per-trace state histories are preallocated, so the
    inner loop touches only integer lists.  Traces may have different
    lengths — shorter ones simply finish earlier.  Each trace gets a
    fresh scoreboard unless ``scoreboards`` injects one per trace.

    ``record_transitions`` additionally logs the transitions each trace
    took (``MonitorResult.transitions``), which coverage campaigns fold
    into :class:`~repro.analysis.coverage.MonitorCoverage`; the default
    leaves the hot loop free of per-tick bookkeeping.
    """
    compiled = as_compiled(monitor)
    if scoreboards is not None and len(scoreboards) != len(traces):
        raise MonitorError(
            "run_many needs exactly one scoreboard per trace when provided"
        )
    return run_many_encoded(
        compiled,
        compiled.codec.encode_many(traces, as_list=True),
        scoreboards=scoreboards,
        record_transitions=record_transitions,
    )


def run_many_encoded(
    monitor: Union[Monitor, CompiledMonitor],
    mask_arrays: Sequence[Sequence[int]],
    scoreboards: Optional[Sequence[Scoreboard]] = None,
    record_transitions: bool = False,
) -> List[MonitorResult]:
    """:func:`run_many` over pre-encoded valuation-mask arrays.

    The sharded pipeline encodes traces once in the parent and ships
    only the mask arrays to worker processes; the vector kernel shares
    the same arrays.  ``mask_arrays`` entries may be any integer
    sequence (``array('i')`` from
    :meth:`~repro.logic.codec.AlphabetCodec.encode_trace`, a list, or a
    NumPy array) — each is the per-tick mask stream of one trace.
    """
    compiled = as_compiled(monitor)
    if scoreboards is not None and len(scoreboards) != len(mask_arrays):
        raise MonitorError(
            "run_many needs exactly one scoreboard per trace when provided"
        )
    table = _stepping_table(compiled)
    final = compiled.final
    exclusive = compiled.ladder_exclusive
    count = len(mask_arrays)
    # Plain lists index faster than buffer types in the tick loop.
    masks: List[List[int]] = [
        stream if type(stream) is list else list(stream)
        for stream in mask_arrays
    ]
    lengths = [len(m) for m in masks]
    states = [compiled.initial] * count
    histories = [[compiled.initial] * (length + 1) for length in lengths]
    detections: List[List[int]] = [[] for _ in range(count)]
    boards = (
        list(scoreboards) if scoreboards is not None
        else [Scoreboard() for _ in range(count)]
    )
    taken: Optional[List[List[Transition]]] = (
        [[] for _ in range(count)] if record_transitions else None
    )
    # Lock-step, tick-major: traces drop out of the active set as they
    # finish, so a few long traces never pay per-tick skip scans over
    # the many short ones.
    active = [index for index in range(count) if lengths[index] > 0]
    tick = 0
    while active:
        surviving: List[int] = []
        for index in active:
            mask = masks[index][tick]
            cell = table[states[index]][mask]
            if type(cell) is tuple:
                cell = _resolve_ladder(
                    cell, mask, boards[index], exclusive,
                    compiled.name, states[index],
                )
            if cell is None:
                raise MonitorError(
                    f"monitor {compiled.name!r}: no transition enabled in "
                    f"state {states[index]} on input "
                    f"{compiled.codec.decode(mask)!r} (trace {index}, "
                    f"tick {tick})"
                )
            for action in cell.actions:
                action.apply(boards[index])
            if taken is not None:
                taken[index].append(cell)
            state = cell.target
            states[index] = state
            histories[index][tick + 1] = state
            if state == final:
                detections[index].append(tick)
            if tick + 1 < lengths[index]:
                surviving.append(index)
        active = surviving
        tick += 1
    return [
        MonitorResult(compiled.name, histories[index], detections[index],
                      lengths[index],
                      transitions=(tuple(taken[index])
                                   if taken is not None else None))
        for index in range(count)
    ]
