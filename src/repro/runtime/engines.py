"""The engine registry and the auto-selecting execution planner.

Every execution path in the package — per-tick stepping, in-process
batches, streaming, sharded worker pools, the serving layer, cached
corpus checks — dispatches on a *backend name* (``"interpreted"``,
``"compiled"``, ``"vector"``, ``"native"``).  This module is the
single seam those names pass through:

* :class:`EngineBackend` — one backend's descriptor: capability flags
  (can it batch?  stream?  run as a sharded worker kernel?  honour the
  two-phase network contract?  consume optimization-pipeline
  artifacts?) plus lazy runner hooks mirroring the concrete entry
  points (``make_engine`` for per-tick stepping engines,
  ``batch_runner``/``encoded_runner`` for the ``run_many`` family);
* a process-wide **registry** (:func:`register_backend`,
  :func:`backend`, :func:`backend_names`) that every entry point
  validates against, so "unknown engine" and "capability missing"
  errors carry identical wording and the live choice list everywhere;
* :func:`plan_execution` — the planner that resolves
  ``engine="auto"`` from measurable workload features: batch width,
  total ticks, the lowered table's
  :attr:`~repro.runtime.vector.VectorTable.escape_ratio` /
  :attr:`~repro.runtime.vector.VectorTable.residual_ratio`, and NumPy
  availability.  In particular, narrow batches over ladder-heavy
  charts stay on the scalar compiled loop — the vector kernel's
  per-tick array-op overhead only amortizes across wide batches.

Registering a new backend is one :func:`register_backend` call: the
CLI choice lists, the validation errors, the streaming checker, the
sharded worker kernels and the serve layer all read the registry, so
no entry point needs to change.  The ``native`` backend (the C
table-stepper emitted by :mod:`repro.codegen.c_gen`, compiled on
demand by :mod:`repro.runtime.native`) is exactly that call: it adds
an ``availability`` hook so a missing host compiler (or
``REPRO_NO_CC=1``) keeps it out of the planner and turns explicit
selection into a uniform "is unavailable" error.  See DESIGN.md for
the registration contract.

Backend *names* are data here and nowhere else: a lint gate
(``tools/lint_engine_dispatch.py``, run by the test suite and CI)
fails the build when a raw ``engine == "..."`` string compare appears
outside this module.
"""

from __future__ import annotations

import os
import sys
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.errors import MonitorError

__all__ = [
    "AUTO",
    "EngineBackend",
    "ExecutionPlan",
    "Workload",
    "backend",
    "backend_names",
    "engine_choices",
    "engines_markdown_table",
    "numpy_ready",
    "plan_execution",
    "plan_streaming",
    "register_backend",
    "require_backend",
    "resolve_step_backend",
    "unknown_engine",
]

#: The planner sentinel: entry points accepting it resolve the real
#: backend through :func:`plan_execution` / :func:`plan_streaming`.
AUTO = "auto"

#: Lane count at which the vector kernel's per-tick array-op overhead
#: is amortized regardless of chart shape (the PR 8 benches put the
#: crossover between 32 and 256 lanes on ladder-heavy charts).
VECTOR_WIDE_WIDTH = 64

#: Below :data:`VECTOR_WIDE_WIDTH` lanes, charts whose lowered table
#: has more than this fraction of escape cells (ladders/actions) run
#: the scalar compiled loop: each predicated escape tick costs a fixed
#: set of whole-batch array ops, which narrow batches cannot amortize.
ESCAPE_DENSITY_CUTOFF = 0.25

#: Tables whose post-predication residual exceeds this fraction fall
#: back to the scalar loop at any width — residual lanes leave the
#: kernel for per-lane scalar resolution, the worst of both worlds.
RESIDUAL_CUTOFF = 0.10

#: Capability flag -> how the missing feature reads in an error.
_CAPABILITY_FEATURES = {
    "step": "per-tick stepping",
    "batch": "batch execution",
    "streaming": "streaming checks",
    "chunked": "chunked mask pushes",
    "sharded_worker": "sharded execution",
    "two_phase": "two-phase network stepping",
    "optimize_ok": "optimized monitors",
}


class EngineBackend:
    """One stepping backend: capability flags + lazy runner hooks.

    ``steps`` and ``when`` are the human-readable descriptor strings
    the README engines table is generated from
    (:func:`engines_markdown_table`); the boolean flags are the
    capability matrix every entry point validates against; the three
    hook factories return the concrete callables on demand so that
    registering a backend never imports its kernel (the vector hooks
    pull in NumPy only when a vector run actually starts).
    """

    __slots__ = (
        "name", "steps", "when", "wants_compiled", "step", "batch",
        "streaming", "chunked", "sharded_worker", "two_phase",
        "optimize_ok", "prefers_numpy", "_engine_factory",
        "_batch_factory", "_encoded_factory", "_availability",
    )

    def __init__(
        self,
        name: str,
        steps: str,
        when: str,
        *,
        wants_compiled: bool,
        step: bool = True,
        batch: bool = False,
        streaming: bool = False,
        chunked: bool = False,
        sharded_worker: bool = False,
        two_phase: bool = False,
        optimize_ok: bool = False,
        prefers_numpy: bool = False,
        engine_factory: Optional[Callable] = None,
        batch_factory: Optional[Callable] = None,
        encoded_factory: Optional[Callable] = None,
        availability: Optional[Callable] = None,
    ):
        self.name = name
        self.steps = steps
        self.when = when
        self.wants_compiled = wants_compiled
        self.step = step
        self.batch = batch
        self.streaming = streaming
        self.chunked = chunked
        self.sharded_worker = sharded_worker
        self.two_phase = two_phase
        self.optimize_ok = optimize_ok
        self.prefers_numpy = prefers_numpy
        self._engine_factory = engine_factory
        self._batch_factory = batch_factory
        self._encoded_factory = encoded_factory
        self._availability = availability

    # -- runner hooks ----------------------------------------------------
    def make_engine(self, monitor, scoreboard=None, record_history=True):
        """A per-tick stepping engine over ``monitor``.

        ``monitor`` must be in the backend's preferred form: the
        compiled table for ``wants_compiled`` backends, the interpreted
        automaton otherwise (see :attr:`wants_compiled`).
        """
        if self._engine_factory is None:
            raise MonitorError(
                f"engine {self.name!r} does not expose a per-tick "
                "stepping engine"
            )
        return self._engine_factory()(
            monitor, scoreboard=scoreboard, record_history=record_history
        )

    def batch_runner(self):
        """The ``run_many``-style callable: ``(monitor, traces, ...)``."""
        if self._batch_factory is None:
            raise MonitorError(
                f"engine {self.name!r} does not support batch execution"
            )
        return self._batch_factory()

    def encoded_runner(self):
        """The pre-encoded twin: ``(monitor, mask_arrays, ...)``."""
        if self._encoded_factory is None:
            raise MonitorError(
                f"engine {self.name!r} does not support batch execution"
            )
        return self._encoded_factory()

    def unavailable_reason(self) -> Optional[str]:
        """Why this backend cannot run here, or ``None`` when it can.

        Backends with an optional host dependency (the native
        table-stepper needs a C compiler) register an ``availability``
        hook; backends without one are always available.  The planner
        never selects an unavailable backend, and
        :func:`require_backend` turns the reason into the uniform
        "engine ... is unavailable" error on explicit selection.
        """
        if self._availability is None:
            return None
        return self._availability()

    def buffer_masks(self) -> bool:
        """Should encoded input be buffer-backed arrays (vs lists)?

        The NumPy vector kernel gathers fastest over buffer-backed
        arrays; every scalar loop (and the pure-Python vector fallback)
        indexes plain lists fastest.
        """
        return self.prefers_numpy and numpy_ready()

    def __repr__(self):
        flags = ", ".join(
            flag for flag in ("step", "batch", "streaming", "chunked",
                              "sharded_worker", "two_phase", "optimize_ok")
            if getattr(self, flag)
        )
        return f"EngineBackend({self.name!r}, {flags})"


# -- the registry -----------------------------------------------------------
_REGISTRY: Dict[str, EngineBackend] = {}


def register_backend(backend_: EngineBackend, replace: bool = False) -> EngineBackend:
    """Add a backend to the process-wide registry.

    Registration order is presentation order (CLI choice lists, the
    README table).  Re-registering a name is an error unless
    ``replace=True`` — the hook for swapping in an accelerated
    implementation under an existing name.
    """
    if backend_.name == AUTO:
        raise MonitorError(
            f"{AUTO!r} is the planner sentinel, not a registrable backend"
        )
    if backend_.name in _REGISTRY and not replace:
        raise MonitorError(
            f"engine {backend_.name!r} is already registered "
            "(pass replace=True to swap implementations)"
        )
    _REGISTRY[backend_.name] = backend_
    return backend_


def backend(name: str) -> EngineBackend:
    """The registered backend for ``name`` (uniform error if unknown)."""
    found = _REGISTRY.get(name)
    if found is None:
        raise unknown_engine(name)
    return found


def backend_names(capability: Optional[str] = None) -> Tuple[str, ...]:
    """Registered names, optionally filtered to one capability flag."""
    if capability is None:
        return tuple(_REGISTRY)
    return tuple(
        name for name, entry in _REGISTRY.items()
        if getattr(entry, capability)
    )


def engine_choices(capability: Optional[str] = None,
                   auto: bool = True) -> Tuple[str, ...]:
    """The valid ``--engine`` spellings for one entry point."""
    names = backend_names(capability)
    return ((AUTO,) + names) if auto else names


def unknown_engine(name, capability: Optional[str] = None,
                   error_cls=MonitorError, auto: bool = True):
    """The one "unknown engine" error every entry point raises."""
    choices = ", ".join(engine_choices(capability, auto=auto))
    return error_cls(f"unknown engine {name!r} (choose from: {choices})")


def require_backend(name: str, capability: Optional[str] = None,
                    error_cls=MonitorError,
                    auto: bool = True) -> EngineBackend:
    """Resolve ``name`` and check one capability flag.

    Raises ``error_cls`` with the registry's uniform wording when the
    name is unregistered, or when it is registered but lacks the
    capability — the choice list in either message names exactly the
    engines valid at the calling entry point (``auto=False`` for the
    few seams that need a concrete backend).
    """
    found = _REGISTRY.get(name)
    if found is None:
        raise unknown_engine(name, capability, error_cls, auto=auto)
    if capability is not None and not getattr(found, capability):
        feature = _CAPABILITY_FEATURES.get(capability, capability)
        choices = ", ".join(engine_choices(capability, auto=auto))
        raise error_cls(
            f"engine {name!r} does not support {feature} "
            f"(choose from: {choices})"
        )
    reason = found.unavailable_reason()
    if reason is not None:
        choices = ", ".join(engine_choices(capability, auto=auto))
        raise error_cls(
            f"engine {name!r} is unavailable: {reason} "
            f"(choose from: {choices})"
        )
    return found


# -- workload features ------------------------------------------------------
def numpy_ready() -> bool:
    """Is the NumPy vector kernel live in this process?

    Follows the vector module's own switch when it is already loaded
    (tests monkeypatch it to force fallback mode); otherwise answers
    from the environment without importing NumPy.
    """
    vector = sys.modules.get("repro.runtime.vector")
    if vector is not None:
        return vector._np is not None
    if os.environ.get("REPRO_NO_NUMPY"):
        return False
    try:
        import importlib.util

        return importlib.util.find_spec("numpy") is not None
    except (ImportError, ValueError):  # pragma: no cover - exotic paths
        return False


class Workload:
    """The measurable shape of one batch: lane count and total ticks."""

    __slots__ = ("n_traces", "total_ticks")

    def __init__(self, n_traces: int = 0, total_ticks: int = 0):
        self.n_traces = n_traces
        self.total_ticks = total_ticks

    @classmethod
    def from_traces(cls, traces: Sequence) -> "Workload":
        """Features of a trace (or mask-array) batch."""
        return cls(len(traces), sum(len(trace) for trace in traces))

    @classmethod
    def from_lengths(cls, lengths: Sequence[int]) -> "Workload":
        return cls(len(lengths), sum(lengths))

    def __repr__(self):
        return (f"Workload(n_traces={self.n_traces}, "
                f"total_ticks={self.total_ticks})")


class ExecutionPlan:
    """One resolved dispatch decision: the backend plus its rationale."""

    __slots__ = ("engine", "backend", "reason", "workload")

    def __init__(self, backend_: EngineBackend, reason: str,
                 workload: Optional[Workload] = None):
        self.engine = backend_.name
        self.backend = backend_
        self.reason = reason
        self.workload = workload

    def batch_runner(self):
        return self.backend.batch_runner()

    def encoded_runner(self):
        return self.backend.encoded_runner()

    def __repr__(self):
        return f"ExecutionPlan({self.engine!r}: {self.reason})"


# -- the planner ------------------------------------------------------------
def _native_ready(monitor) -> bool:
    """Can the native table-stepper run ``monitor`` here?

    True only when the backend is registered, a C compiler is present
    (and not vetoed by ``REPRO_NO_CC``), and the monitor's lowered
    table fits the C emitter's constraints.  Consults the memoized
    lowering only — no compilation happens at planning time.
    """
    entry = _REGISTRY.get("native")
    if entry is None or monitor is None:
        return False
    if entry.unavailable_reason() is not None:
        return False
    from repro.runtime.compiled import as_compiled
    from repro.runtime.native import native_plan_ok
    from repro.runtime.vector import vector_table

    return native_plan_ok(vector_table(as_compiled(monitor)))


def plan_execution(monitor, workload: Optional[Workload] = None,
                   engine: str = AUTO, capability: str = "batch",
                   error_cls=MonitorError) -> ExecutionPlan:
    """Resolve an engine request against a monitor and a workload.

    An explicit name validates against ``capability`` and is honoured
    verbatim.  ``"auto"`` picks from measurable features, cheapest
    test first:

    1. no live NumPy -> **native** when a C compiler can lower the
       table, else **compiled** (the pure-Python vector fallback
       exists for verdict identity, not speed);
    2. single-lane workloads -> **native** when buildable, else
       **compiled** (the vector kernel amortizes per-tick overhead
       across lanes; the native stepper needs no amortization);
    3. a lowered table whose post-predication residual exceeds
       :data:`RESIDUAL_CUTOFF` (or that resisted predication entirely)
       -> **compiled** at any width (such tables also fall outside the
       C lowering);
    4. narrow batches (under :data:`VECTOR_WIDE_WIDTH` lanes) on
       ladder-heavy charts (escape density over
       :data:`ESCAPE_DENSITY_CUTOFF`) -> **native** when buildable,
       else **compiled** — the measured PR 8 w32 regression case;
    5. otherwise -> **vector** (wide batches amortize the array-op
       overhead; the gather kernel scales with lanes).

    The lowering consulted in rules 2-4 is memoized
    (:func:`~repro.runtime.vector.vector_table`), so planning a batch
    against a warm monitor costs a few attribute reads.  Whether the
    native backend is *selectable* follows the same optional-dependency
    policy as NumPy: no host compiler (or ``REPRO_NO_CC=1``) and the
    planner never picks it, while explicit ``engine="native"`` raises
    the uniform "is unavailable" error from :func:`require_backend`.
    """
    if engine != AUTO:
        chosen = require_backend(engine, capability, error_cls=error_cls)
        return ExecutionPlan(chosen, "explicitly requested", workload)
    if workload is None:
        workload = Workload()
    if not numpy_ready():
        if _native_ready(monitor):
            return ExecutionPlan(
                backend("native"),
                "auto: no NumPy — the native table-stepper replaces "
                "the scalar loop",
                workload,
            )
        return ExecutionPlan(
            backend("compiled"),
            "auto: no NumPy — the scalar table loop beats the "
            "pure-Python vector fallback",
            workload,
        )
    if workload.n_traces <= 1:
        if _native_ready(monitor):
            return ExecutionPlan(
                backend("native"),
                "auto: single-lane workload — the native stepper "
                "needs no batch to amortize over",
                workload,
            )
        return ExecutionPlan(
            backend("compiled"),
            "auto: single-lane workload — vector overhead cannot amortize",
            workload,
        )
    from repro.runtime.compiled import as_compiled
    from repro.runtime.vector import vector_table

    table = vector_table(as_compiled(monitor))
    if not table.vectorizable or table.residual_ratio > RESIDUAL_CUTOFF:
        return ExecutionPlan(
            backend("compiled"),
            f"auto: {table.residual_ratio:.0%} of cells resolve escapes "
            "on the scalar path",
            workload,
        )
    if (workload.n_traces < VECTOR_WIDE_WIDTH
            and table.escape_ratio > ESCAPE_DENSITY_CUTOFF):
        reason = (
            f"auto: narrow batch ({workload.n_traces} lanes) on a "
            f"ladder-heavy chart ({table.escape_ratio:.0%} escape "
            "density)"
        )
        if _native_ready(monitor):
            return ExecutionPlan(backend("native"), reason, workload)
        return ExecutionPlan(backend("compiled"), reason, workload)
    return ExecutionPlan(
        backend("vector"),
        f"auto: {workload.n_traces}-lane batch over a predicable table",
        workload,
    )


def plan_streaming(engine: str = AUTO, implication: bool = False,
                   error_cls=MonitorError) -> str:
    """Resolve an engine request for online (per-stream) checking.

    Implication specs interleave obligations with detections tick by
    tick, so ``"auto"`` resolves them to the compiled scalar engine;
    detector streams take the chunked vector path when NumPy is live.
    An explicit name validates against the ``streaming`` capability.
    """
    if engine != AUTO:
        return require_backend(engine, "streaming",
                               error_cls=error_cls).name
    if implication or not numpy_ready():
        return "compiled"
    return "vector"


def resolve_step_backend(engine: str, capability: str = "step",
                         error_cls=MonitorError) -> EngineBackend:
    """Resolve an engine request for per-tick stepping contexts.

    ``"auto"`` always means the compiled table here — per-tick
    stepping has no batch width for the vector kernel to amortize
    over, and the interpreted walker is the explicit-opt-in reference.
    """
    if engine == AUTO:
        return require_backend("compiled", capability,
                               error_cls=error_cls)
    return require_backend(engine, capability, error_cls=error_cls)


# -- documentation ----------------------------------------------------------
def engines_markdown_table() -> str:
    """The README engines table, generated from the live registry.

    ``tests/runtime/test_engine_matrix.py`` asserts the README block
    between the ``engines-table`` markers equals this output, so the
    documentation cannot drift from the registered backends.
    """
    lines = ["| engine | what steps | when to use |", "|---|---|---|"]
    for entry in _REGISTRY.values():
        lines.append(f"| `{entry.name}` | {entry.steps} | {entry.when} |")
    lines.append(
        "| `auto` | the planner's pick of the above | the default for "
        "every CLI entry point: resolved per workload from batch "
        "width, ladder density and NumPy availability |"
    )
    return "\n".join(lines) + "\n"


# -- the built-in backends --------------------------------------------------
def _interpreted_engine_factory():
    from repro.monitor.engine import MonitorEngine

    return MonitorEngine


def _compiled_engine_factory():
    from repro.runtime.compiled import CompiledEngine

    return CompiledEngine


def _vector_engine_factory():
    from repro.runtime.vector import VectorEngine

    return VectorEngine


def _compiled_batch_factory():
    from repro.runtime.compiled import run_many

    return run_many


def _compiled_encoded_factory():
    from repro.runtime.compiled import run_many_encoded

    return run_many_encoded


def _vector_batch_factory():
    from repro.runtime.vector import run_many_vector

    return run_many_vector


def _vector_encoded_factory():
    from repro.runtime.vector import run_many_vector_encoded

    return run_many_vector_encoded


def _native_batch_factory():
    from repro.runtime.native import run_many_native

    return run_many_native


def _native_encoded_factory():
    from repro.runtime.native import run_many_native_encoded

    return run_many_native_encoded


def _native_availability():
    from repro.runtime.native import unavailable_reason

    return unavailable_reason()


register_backend(EngineBackend(
    "interpreted",
    steps="guard expression trees, as written",
    when="the reference semantics: chart development, guard debugging",
    wants_compiled=False,
    step=True,
    streaming=True,
    two_phase=True,
    engine_factory=_interpreted_engine_factory,
))

register_backend(EngineBackend(
    "compiled",
    steps="dense `(state, mask)` table, one trace per engine",
    when="long single traces, streaming/online checking, narrow "
         "batches on ladder-heavy charts, 5–50x over interpreted",
    wants_compiled=True,
    step=True,
    batch=True,
    streaming=True,
    sharded_worker=True,
    two_phase=True,
    optimize_ok=True,
    engine_factory=_compiled_engine_factory,
    batch_factory=_compiled_batch_factory,
    encoded_factory=_compiled_encoded_factory,
))

register_backend(EngineBackend(
    "vector",
    steps="flat integer array, whole batch per gather; ladders as "
          "predicated rung matrices",
    when="wide batches (tens to hundreds of traces): ~3–4x over "
         "`compiled` lock-step at 256 lanes even at 65–75% ladder "
         "density, identical verdicts and errors",
    wants_compiled=True,
    step=False,
    batch=True,
    streaming=True,
    chunked=True,
    sharded_worker=True,
    optimize_ok=True,
    prefers_numpy=True,
    engine_factory=_vector_engine_factory,
    batch_factory=_vector_batch_factory,
    encoded_factory=_vector_encoded_factory,
))

register_backend(EngineBackend(
    "native",
    steps="compile-on-demand C table-stepper (same flat table and "
          "predicated rungs), one shared object per monitor",
    when="single streams and narrow ladder-heavy batches when a host "
         "C compiler is present: ~3–6x over `compiled` per lane, "
         "anomalies replay through the scalar engine for identical "
         "errors",
    wants_compiled=True,
    step=False,
    batch=True,
    sharded_worker=True,
    optimize_ok=True,
    batch_factory=_native_batch_factory,
    encoded_factory=_native_encoded_factory,
    availability=_native_availability,
))
