"""The compile-on-demand native batch backend (host ``cc`` + ctypes).

:mod:`repro.codegen.c_gen` emits one self-contained C table-stepper
per monitor, mirroring :class:`~repro.runtime.vector.VectorTable`'s
lowering; this module owns everything around that source text:

* **compiler discovery** — ``$CC`` then ``cc``/``gcc``/``clang`` on
  ``PATH``; the C compiler is an *optional* dependency under the same
  policy as NumPy: absent (or ``REPRO_NO_CC=1``) means the planner
  never selects the backend and an explicit ``--engine native``
  raises the registry's uniform unavailability error
  (:func:`unavailable_reason` is the registry's availability hook);
* **the shared-object disk cache** — compiled objects are stored
  through :class:`~repro.cache.CorpusCache` (atomic-rename writes,
  stale ``.tmp-*`` sweeping) keyed by a fingerprint over the emitted
  source, the emitter version, the compiler identity and the
  platform, so a table/emitter/toolchain change can never load a
  stale object; damaged entries fail closed — ``ctypes.CDLL`` or the
  symbol lookup failing evicts the entry and rebuilds from source;
* **the batch runners** — :func:`run_many_native` /
  :func:`run_many_native_encoded`, drop-ins for the ``run_many``
  family.  Mask streams are flattened into one ``int32`` buffer, the
  kernel steps every lane and writes state histories plus detection
  ticks into out-buffers, and a nonzero status (missing cell, no
  passing rung, nondeterminism, strict ``Del_evt`` under-run) replays
  the whole batch through the scalar ``run_many_encoded`` loop so
  error messages and anomaly ordering stay byte-identical to
  ``run_many``.  Injected scoreboards, ``record_transitions`` runs
  and non-lowerable tables delegate to the scalar loop outright —
  identical results either way.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import sys
import tempfile
from array import array
from typing import List, Optional, Sequence, Union

from repro.cache import CorpusCache, IdentityCache
from repro.errors import MonitorError
from repro.monitor.automaton import Monitor
from repro.monitor.engine import MonitorResult
from repro.monitor.scoreboard import Scoreboard
from repro.runtime.compiled import (
    CompiledMonitor,
    as_compiled,
    run_many_encoded,
)
from repro.runtime.vector import VectorTable, vector_table

__all__ = [
    "NativeKernel",
    "find_cc",
    "native_cache_root",
    "native_kernel",
    "native_plan_ok",
    "run_many_native",
    "run_many_native_encoded",
    "unavailable_reason",
]

#: Compiler flags: optimized, position-independent, silent shared
#: object.  C99 for declarations-in-for; no platform extensions.
_CC_FLAGS = ("-O2", "-fPIC", "-shared", "-std=c99")

#: Candidate driver names when ``$CC`` is unset.
_CC_CANDIDATES = ("cc", "gcc", "clang")

_cc_path: Optional[str] = None
_cc_scanned = False


def find_cc() -> Optional[str]:
    """The host C compiler, or ``None`` (memoized ``PATH`` scan).

    ``REPRO_NO_CC`` is checked by :func:`unavailable_reason`, not
    here — the scan result is environment-independent.
    """
    global _cc_path, _cc_scanned
    if not _cc_scanned:
        explicit = os.environ.get("CC")
        names = (explicit,) + _CC_CANDIDATES if explicit else _CC_CANDIDATES
        for name in names:
            found = shutil.which(name)
            if found:
                _cc_path = found
                break
        _cc_scanned = True
    return _cc_path


def unavailable_reason() -> Optional[str]:
    """Why the backend cannot run right now — ``None`` when it can.

    This is the registry's availability hook: the planner skips the
    backend and explicit selection raises the uniform unavailability
    error carrying exactly this text.
    """
    if os.environ.get("REPRO_NO_CC"):
        return "REPRO_NO_CC is set"
    if find_cc() is None:
        return "no C compiler found (install cc or set CC)"
    return None


def native_cache_root() -> str:
    """The shared-object cache directory (``REPRO_NATIVE_CACHE`` wins)."""
    configured = os.environ.get("REPRO_NATIVE_CACHE")
    if configured:
        return configured
    try:
        owner = f"-{os.getuid()}"
    except AttributeError:  # pragma: no cover - non-POSIX
        owner = ""
    return os.path.join(tempfile.gettempdir(), f"repro-native{owner}")


def _fingerprint(source: str, cc: str) -> str:
    """The cache key: source text + emitter + toolchain + platform.

    Any of these changing must miss the cache — a stale object built
    by an older emitter or a different compiler is never loaded.
    """
    from repro.codegen.c_gen import CGEN_VERSION

    digest = hashlib.sha256()
    digest.update(f"v{CGEN_VERSION}|{cc}|{sys.platform}|".encode())
    digest.update(source.encode())
    return digest.hexdigest()


class NativeKernel:
    """One loaded shared object: the ctypes entry point plus metadata."""

    __slots__ = ("compiled", "path", "fingerprint", "_fn", "_lib")

    def __init__(self, compiled: CompiledMonitor, path: str,
                 fingerprint: str, lib, fn):
        self.compiled = compiled
        self.path = path
        self.fingerprint = fingerprint
        self._lib = lib
        self._fn = fn

    def run(self, flat_masks, offsets, n_lanes, history, detections,
            det_counts) -> int:
        return self._fn(flat_masks, offsets, n_lanes, history,
                        detections, det_counts)


def _load_so(path: str):
    """``(lib, fn)`` from one shared object, or ``None`` when damaged."""
    from repro.codegen.c_gen import ENTRY_SYMBOL

    try:
        lib = ctypes.CDLL(path)
        fn = getattr(lib, ENTRY_SYMBOL)
    except (OSError, AttributeError):
        return None
    fn.restype = ctypes.c_int32
    fn.argtypes = (
        ctypes.c_void_p,  # masks
        ctypes.c_void_p,  # offsets
        ctypes.c_int64,   # n_lanes
        ctypes.c_void_p,  # history
        ctypes.c_void_p,  # detections
        ctypes.c_void_p,  # det_counts
    )
    return lib, fn


def _compile_so(cc: str, source: str, so_path: str) -> bool:
    """Compile ``source`` to ``so_path``; False on any toolchain error."""
    with tempfile.TemporaryDirectory(prefix="repro-cgen-") as workdir:
        c_path = os.path.join(workdir, "stepper.c")
        with open(c_path, "w", encoding="utf-8") as stream:
            stream.write(source)
        try:
            result = subprocess.run(
                [cc, *_CC_FLAGS, "-o", so_path, c_path],
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
                timeout=120,
            )
        except (OSError, subprocess.SubprocessError):
            return False
        return result.returncode == 0 and os.path.exists(so_path)


#: Per-process kernels, keyed by compiled-monitor identity.  The
#: sentinel records monitors that cannot (currently) get a kernel so
#: the fallback decision is made once, not per batch.
_KERNELS = IdentityCache(limit=64)
_UNBUILDABLE = object()


def native_plan_ok(table: VectorTable) -> bool:
    """Planner probe: could this table get a native kernel?

    Cheap by design — availability plus the static lowering
    constraints; no source is emitted and nothing is compiled until a
    batch actually runs.
    """
    from repro.codegen.c_gen import lowerable

    return unavailable_reason() is None and lowerable(table)


def native_kernel(
    monitor: Union[Monitor, CompiledMonitor]
) -> Optional[NativeKernel]:
    """The (memoized) loaded kernel for ``monitor``, or ``None``.

    ``None`` means the batch runners silently take the scalar path:
    no compiler, a table outside the C lowering, a toolchain failure.
    Objects come from the disk cache when the fingerprint matches; a
    damaged or unloadable entry is evicted and rebuilt from source
    (fail closed), and only a clean load is ever returned.
    """
    compiled = as_compiled(monitor)
    cached = _KERNELS.get(compiled)
    if cached is not None:
        return None if cached is _UNBUILDABLE else cached
    kernel = _build_kernel(compiled)
    _KERNELS.put(compiled, kernel if kernel is not None else _UNBUILDABLE)
    return kernel


def _build_kernel(compiled: CompiledMonitor) -> Optional[NativeKernel]:
    from repro.codegen.c_gen import lowerable, table_to_c

    if unavailable_reason() is not None:
        return None
    table = vector_table(compiled)
    if not lowerable(table):
        return None
    cc = find_cc()
    source = table_to_c(table)
    key = _fingerprint(source, cc)
    cache = CorpusCache(native_cache_root(), suffix=".so")
    path = cache.path_for(key)
    if os.path.exists(path):
        loaded = _load_so(path)
        if loaded is not None:
            return NativeKernel(compiled, path, key, *loaded)
        cache.invalidate(key)
    # Build into a private temp file, then publish atomically: a
    # concurrent builder of the same key loses the race harmlessly.
    handle, tmp_so = tempfile.mkstemp(suffix=".so", dir=cache.root,
                                      prefix=cache._TMP_PREFIX)
    os.close(handle)
    try:
        if not _compile_so(cc, source, tmp_so):
            return None
        os.replace(tmp_so, path)
    except OSError:
        return None
    finally:
        try:
            if os.path.exists(tmp_so):
                os.unlink(tmp_so)
        except OSError:  # pragma: no cover - cleanup race
            pass
    loaded = _load_so(path)
    if loaded is None:  # pragma: no cover - compiler emitted garbage
        cache.invalidate(key)
        return None
    return NativeKernel(compiled, path, key, *loaded)


# -- the batch runners ------------------------------------------------------
def _flatten_masks(mask_arrays) -> array:
    """Concatenate per-lane mask streams into one ``int32`` buffer."""
    flat = array("i")
    for stream in mask_arrays:
        if type(stream) is array and stream.typecode == "i":
            flat.extend(stream)
        elif type(stream) is list:
            flat.extend(stream)
        else:
            # NumPy arrays (and any other integer sequence) go through
            # a raw-bytes copy: element iteration over ndarrays is slow.
            np = sys.modules.get("numpy")
            if np is not None and isinstance(stream, np.ndarray):
                flat.frombytes(
                    np.ascontiguousarray(
                        stream, dtype=np.int32
                    ).tobytes()
                )
            else:
                flat.extend(int(mask) for mask in stream)
    return flat


def _addr(buffer) -> int:
    return buffer.buffer_info()[0]


def run_many_native(
    monitor: Union[Monitor, CompiledMonitor],
    traces,
    scoreboards: Optional[Sequence[Scoreboard]] = None,
    record_transitions: bool = False,
) -> List[MonitorResult]:
    """Drop-in for :func:`~repro.runtime.compiled.run_many`, native."""
    compiled = as_compiled(monitor)
    if scoreboards is not None and len(scoreboards) != len(traces):
        raise MonitorError(
            "run_many needs exactly one scoreboard per trace when provided"
        )
    return run_many_native_encoded(
        compiled,
        compiled.codec.encode_many(traces),
        scoreboards=scoreboards,
        record_transitions=record_transitions,
    )


def run_many_native_encoded(
    monitor: Union[Monitor, CompiledMonitor],
    mask_arrays: Sequence[Sequence[int]],
    scoreboards: Optional[Sequence[Scoreboard]] = None,
    record_transitions: bool = False,
) -> List[MonitorResult]:
    """:func:`run_many_native` over pre-encoded mask arrays.

    Runs that the C lowering cannot express — injected scoreboards
    (observable objects), transition recording, non-lowerable tables,
    no kernel — delegate to the scalar ``run_many_encoded``; any
    kernel anomaly replays the whole batch through the same loop so
    the raised error (message, trace-index order) is byte-identical.
    """
    compiled = as_compiled(monitor)
    if scoreboards is not None and len(scoreboards) != len(mask_arrays):
        raise MonitorError(
            "run_many needs exactly one scoreboard per trace when provided"
        )
    kernel = (
        native_kernel(compiled)
        if scoreboards is None and not record_transitions else None
    )
    if kernel is None:
        return run_many_encoded(
            compiled, mask_arrays, scoreboards=scoreboards,
            record_transitions=record_transitions,
        )
    count = len(mask_arrays)
    if count == 0:
        return []
    lengths = [len(stream) for stream in mask_arrays]
    flat = _flatten_masks(mask_arrays)
    offsets = array("q", [0] * (count + 1))
    position = 0
    for index, length in enumerate(lengths):
        position += length
        offsets[index + 1] = position
    history = array("i", bytes(4 * (position + count)))
    detections = array("i", bytes(4 * max(1, position)))
    det_counts = array("q", bytes(8 * count))
    status = kernel.run(
        _addr(flat) if position else None,
        _addr(offsets), count, _addr(history),
        _addr(detections), _addr(det_counts),
    )
    if status != 0:
        # Some lane hit an anomaly: replay the whole batch through the
        # scalar loop, which raises run_many's exact error (earliest
        # tick, lowest trace index).
        return run_many_encoded(compiled, mask_arrays)
    results: List[MonitorResult] = []
    name = compiled.name
    for index in range(count):
        start = offsets[index]
        length = lengths[index]
        hist_start = start + index
        results.append(MonitorResult(
            name,
            history[hist_start:hist_start + length + 1].tolist(),
            detections[start:start + det_counts[index]].tolist(),
            length,
        ))
    return results
