"""Comparison baselines for the monitor-synthesis evaluation.

The paper positions CESC synthesis against two alternatives:

* *temporal-logic monitor generation* ([17] Geilen, [18] FoCs): we
  provide an LTL engine with finite-trace (LTLf) semantics, a
  CESC-to-LTL translator, and a formula-progression monitor
  construction (:mod:`repro.baselines.ltl`, :mod:`.ltl_monitor`,
  :mod:`.cesc_to_ltl`);
* *manual monitor development*: hand-written checkers for the OCP and
  AMBA scenarios, including a deliberately buggy variant standing in
  for the error-prone manual flow the paper motivates
  (:mod:`repro.baselines.manual`).

:mod:`repro.baselines.naive` is the ablation baseline: window matching
without the KMP-style transition function.
"""

from repro.baselines.cesc_to_ltl import scesc_to_ltl
from repro.baselines.ltl import (
    Always,
    Atom,
    Eventually,
    LtlAnd,
    LtlFormula,
    LtlNot,
    LtlOr,
    Next,
    Until,
    parse_ltl,
)
from repro.baselines.ltl_monitor import LtlProgressionMonitor
from repro.baselines.naive import NaiveWindowMonitor

__all__ = [
    "Always",
    "Atom",
    "Eventually",
    "LtlAnd",
    "LtlFormula",
    "LtlNot",
    "LtlOr",
    "LtlProgressionMonitor",
    "NaiveWindowMonitor",
    "Next",
    "Until",
    "parse_ltl",
    "scesc_to_ltl",
]
