"""Translating SCESCs into LTL — the spec-size comparison baseline.

"Capturing high-level assertions using specification languages such as
PSL/Sugar or temporal logic becomes complex for interactions involving
long event sequences" (Section 1).  This translator makes that claim
measurable: an ``n``-tick chart becomes the co-safety formula

    F ( P1 & X ( P2 & X ( ... & X Pn ) ) )

whose syntactic size grows with the full pattern, and whose
progression automaton (see :mod:`repro.baselines.ltl_monitor`) is the
temporal-logic route's monitor.  ``formula_size`` provides the node
count used in the spec-complexity comparison bench.
"""

from __future__ import annotations

from typing import List

from repro.baselines.ltl import (
    Atom,
    Eventually,
    LtlAnd,
    LtlFormula,
    LtlNot,
    LtlOr,
    Next,
    TRUE_LTL,
    FALSE_LTL,
)
from repro.cesc.ast import SCESC
from repro.errors import LtlError
from repro.logic.expr import And, Const, EventRef, Expr, Not, Or, PropRef

__all__ = ["expr_to_ltl", "scesc_to_ltl", "formula_size"]


def expr_to_ltl(expr: Expr) -> LtlFormula:
    """Map a guard expression to a propositional LTL formula."""
    if isinstance(expr, Const):
        return TRUE_LTL if expr.value else FALSE_LTL
    if isinstance(expr, (EventRef, PropRef)):
        return Atom(expr.name)
    if isinstance(expr, Not):
        return LtlNot(expr_to_ltl(expr.operand))
    if isinstance(expr, And):
        if not expr.args:
            return TRUE_LTL
        out = expr_to_ltl(expr.args[0])
        for arg in expr.args[1:]:
            out = LtlAnd(out, expr_to_ltl(arg))
        return out
    if isinstance(expr, Or):
        if not expr.args:
            return FALSE_LTL
        out = expr_to_ltl(expr.args[0])
        for arg in expr.args[1:]:
            out = LtlOr(out, expr_to_ltl(arg))
        return out
    raise LtlError(
        f"cannot translate {expr!r} to LTL (scoreboard checks have no "
        "propositional equivalent — causality is exactly what the "
        "temporal-logic route struggles to express)"
    )


def scesc_to_ltl(chart: SCESC) -> LtlFormula:
    """``F(P1 & X(P2 & X(... Pn)))`` — the chart's detection formula.

    Causality arrows are *not* translated: their scoreboard semantics
    has no direct propositional-LTL counterpart (one would need to
    duplicate the pattern per outstanding occurrence), which is the
    comparison's qualitative point.
    """
    pattern = [tick.expr() for tick in chart.ticks]
    if not pattern:
        raise LtlError(f"chart {chart.name!r} has no grid lines")
    formula = expr_to_ltl(pattern[-1])
    for expr in reversed(pattern[:-1]):
        formula = LtlAnd(expr_to_ltl(expr), Next(formula))
    return Eventually(formula)


def formula_size(formula: LtlFormula) -> int:
    """Node count of a formula (the spec-complexity metric)."""
    if isinstance(formula, Atom) or formula in (TRUE_LTL, FALSE_LTL):
        return 1
    if isinstance(formula, LtlNot):
        return 1 + formula_size(formula.operand)
    if isinstance(formula, (LtlAnd, LtlOr)):
        return 1 + formula_size(formula.left) + formula_size(formula.right)
    if hasattr(formula, "operand"):
        return 1 + formula_size(formula.operand)
    if hasattr(formula, "left"):
        return 1 + formula_size(formula.left) + formula_size(formula.right)
    raise LtlError(f"unknown formula node {formula!r}")
