"""Naive window matcher: the no-KMP ablation baseline.

Keeps the last ``n`` trace elements in a ring buffer and re-checks the
whole pattern against the window at every tick — ``O(n)`` work per tick
and ``O(n)`` state, versus the synthesized automaton's ``O(1)`` step
and ``log(n)``-bit state.  Because it inspects the *actual* text it is
exact (it agrees with the subset detector), which also makes it a handy
oracle; ``bench_ablation_kmp`` charts the step-cost gap against ``Tr``.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List, Optional

from repro.logic.valuation import Valuation
from repro.semantics.run import Trace
from repro.synthesis.pattern import FlatPattern

__all__ = ["NaiveWindowMonitor"]


class NaiveWindowMonitor:
    """Re-matches the full pattern against a sliding window each tick."""

    def __init__(self, pattern: FlatPattern):
        self._pattern = pattern
        self._window: Deque[Valuation] = deque(maxlen=pattern.length)
        self._tick = 0
        self._detections: List[int] = []
        self._comparisons = 0

    @property
    def detections(self) -> List[int]:
        return list(self._detections)

    @property
    def accepted(self) -> bool:
        return bool(self._detections)

    @property
    def comparisons(self) -> int:
        """Pattern-element evaluations performed (the cost metric)."""
        return self._comparisons

    def step(self, valuation: Valuation) -> bool:
        self._window.append(valuation)
        matched = False
        if len(self._window) == self._pattern.length:
            matched = True
            for expr, element in zip(self._pattern.exprs, self._window):
                self._comparisons += 1
                if not expr.evaluate(element):
                    matched = False
                    break
            if matched:
                self._detections.append(self._tick)
        self._tick += 1
        return matched

    def feed(self, trace: Iterable[Valuation]) -> "NaiveWindowMonitor":
        for valuation in trace:
            self.step(valuation)
        return self

    def reset(self) -> None:
        self._window.clear()
        self._tick = 0
        self._detections = []
        self._comparisons = 0
