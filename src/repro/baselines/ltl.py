"""A small LTL engine with finite-trace (LTLf) semantics.

Supports the operators the temporal-logic baseline needs: atoms,
Boolean connectives, ``X`` (strong next), ``F``, ``G`` and ``U``.
Formulas are immutable and hashable (the progression monitor uses them
as automaton states), evaluate over finite traces, and parse from the
conventional textual syntax (``F (req & X ack)``).
"""

from __future__ import annotations

import re
from typing import FrozenSet, Iterator, List, NamedTuple, Optional, Tuple

from repro.errors import LtlError
from repro.logic.valuation import Valuation
from repro.semantics.run import Trace

__all__ = [
    "LtlFormula",
    "LtlTrue",
    "LtlFalse",
    "Atom",
    "LtlNot",
    "LtlAnd",
    "LtlOr",
    "Next",
    "Eventually",
    "Always",
    "Until",
    "TRUE_LTL",
    "FALSE_LTL",
    "parse_ltl",
]


class LtlFormula:
    """Base class; subclasses are immutable value objects."""

    def holds(self, trace: Trace, position: int = 0) -> bool:
        """LTLf satisfaction at ``position`` of a finite trace."""
        raise NotImplementedError

    def atoms(self) -> FrozenSet[str]:
        raise NotImplementedError

    def __and__(self, other: "LtlFormula") -> "LtlFormula":
        return LtlAnd(self, other)

    def __or__(self, other: "LtlFormula") -> "LtlFormula":
        return LtlOr(self, other)

    def __invert__(self) -> "LtlFormula":
        return LtlNot(self)


class LtlTrue(LtlFormula):
    def holds(self, trace, position=0):
        return True

    def atoms(self):
        return frozenset()

    def __eq__(self, other):
        return isinstance(other, LtlTrue)

    def __hash__(self):
        return hash("LtlTrue")

    def __repr__(self):
        return "true"


class LtlFalse(LtlFormula):
    def holds(self, trace, position=0):
        return False

    def atoms(self):
        return frozenset()

    def __eq__(self, other):
        return isinstance(other, LtlFalse)

    def __hash__(self):
        return hash("LtlFalse")

    def __repr__(self):
        return "false"


TRUE_LTL = LtlTrue()
FALSE_LTL = LtlFalse()


class Atom(LtlFormula):
    __slots__ = ("name",)

    def __init__(self, name: str):
        if not name:
            raise LtlError("atom name must be non-empty")
        object.__setattr__(self, "name", name)

    def __setattr__(self, name, value):
        raise AttributeError("Atom is immutable")

    def holds(self, trace, position=0):
        if position >= trace.length:
            return False
        return trace[position].is_true(self.name)

    def atoms(self):
        return frozenset({self.name})

    def __eq__(self, other):
        return isinstance(other, Atom) and self.name == other.name

    def __hash__(self):
        return hash(("Atom", self.name))

    def __repr__(self):
        return self.name


class LtlNot(LtlFormula):
    __slots__ = ("operand",)

    def __init__(self, operand: LtlFormula):
        object.__setattr__(self, "operand", operand)

    def __setattr__(self, name, value):
        raise AttributeError("LtlNot is immutable")

    def holds(self, trace, position=0):
        return not self.operand.holds(trace, position)

    def atoms(self):
        return self.operand.atoms()

    def __eq__(self, other):
        return isinstance(other, LtlNot) and self.operand == other.operand

    def __hash__(self):
        return hash(("LtlNot", self.operand))

    def __repr__(self):
        return f"!({self.operand!r})"


class _Binary(LtlFormula):
    __slots__ = ("left", "right")
    _symbol = "?"

    def __init__(self, left: LtlFormula, right: LtlFormula):
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)

    def __setattr__(self, name, value):
        raise AttributeError(f"{type(self).__name__} is immutable")

    def atoms(self):
        return self.left.atoms() | self.right.atoms()

    def __eq__(self, other):
        return (
            type(self) is type(other)
            and self.left == other.left
            and self.right == other.right
        )

    def __hash__(self):
        return hash((type(self).__name__, self.left, self.right))

    def __repr__(self):
        return f"({self.left!r} {self._symbol} {self.right!r})"


class LtlAnd(_Binary):
    _symbol = "&"

    def holds(self, trace, position=0):
        return self.left.holds(trace, position) and self.right.holds(
            trace, position
        )


class LtlOr(_Binary):
    _symbol = "|"

    def holds(self, trace, position=0):
        return self.left.holds(trace, position) or self.right.holds(
            trace, position
        )


class Until(_Binary):
    _symbol = "U"

    def holds(self, trace, position=0):
        for index in range(position, trace.length):
            if self.right.holds(trace, index):
                return True
            if not self.left.holds(trace, index):
                return False
        return False


class _Unary(LtlFormula):
    __slots__ = ("operand",)

    def __init__(self, operand: LtlFormula):
        object.__setattr__(self, "operand", operand)

    def __setattr__(self, name, value):
        raise AttributeError(f"{type(self).__name__} is immutable")

    def atoms(self):
        return self.operand.atoms()

    def __eq__(self, other):
        return type(self) is type(other) and self.operand == other.operand

    def __hash__(self):
        return hash((type(self).__name__, self.operand))


class Next(_Unary):
    """Strong next: requires a successor position."""

    def holds(self, trace, position=0):
        return position + 1 < trace.length and self.operand.holds(
            trace, position + 1
        )

    def __repr__(self):
        return f"X ({self.operand!r})"


class Eventually(_Unary):
    def holds(self, trace, position=0):
        return any(
            self.operand.holds(trace, index)
            for index in range(position, trace.length)
        )

    def __repr__(self):
        return f"F ({self.operand!r})"


class Always(_Unary):
    def holds(self, trace, position=0):
        return all(
            self.operand.holds(trace, index)
            for index in range(position, trace.length)
        )

    def __repr__(self):
        return f"G ({self.operand!r})"


# ---------------------------------------------------------------- parser ----
_LTL_TOKEN = re.compile(
    r"\s+|(?P<name>[A-Za-z_][A-Za-z0-9_]*)|(?P<op>\|\||&&|[()!&|])"
)


class _Token(NamedTuple):
    kind: str
    text: str
    pos: int


def _tokenize(source: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    while pos < len(source):
        match = _LTL_TOKEN.match(source, pos)
        if match is None:
            raise LtlError(f"unexpected character {source[pos]!r} at {pos}")
        if match.lastgroup is not None:
            kind = "name" if match.lastgroup == "name" else "op"
            tokens.append(_Token(kind, match.group(), pos))
        pos = match.end()
    tokens.append(_Token("end", "", len(source)))
    return tokens


class _LtlParser:
    """Precedence: U lowest, then |, &, unary (X F G !), atoms."""

    def __init__(self, tokens: List[_Token]):
        self._tokens = tokens
        self._index = 0

    def _peek(self) -> _Token:
        return self._tokens[self._index]

    def _advance(self) -> _Token:
        token = self._tokens[self._index]
        if token.kind != "end":
            self._index += 1
        return token

    def parse(self) -> LtlFormula:
        formula = self._until()
        if self._peek().kind != "end":
            raise LtlError(f"trailing input at {self._peek().pos}")
        return formula

    def _until(self) -> LtlFormula:
        left = self._or()
        if self._peek().kind == "name" and self._peek().text == "U":
            self._advance()
            right = self._until()
            return Until(left, right)
        return left

    def _or(self) -> LtlFormula:
        left = self._and()
        while self._peek().kind == "op" and self._peek().text in ("|", "||"):
            self._advance()
            left = LtlOr(left, self._and())
        return left

    def _and(self) -> LtlFormula:
        left = self._unary()
        while self._peek().kind == "op" and self._peek().text in ("&", "&&"):
            self._advance()
            left = LtlAnd(left, self._unary())
        return left

    def _unary(self) -> LtlFormula:
        token = self._peek()
        if token.kind == "op" and token.text == "!":
            self._advance()
            return LtlNot(self._unary())
        if token.kind == "name" and token.text in ("X", "F", "G"):
            self._advance()
            cls = {"X": Next, "F": Eventually, "G": Always}[token.text]
            return cls(self._unary())
        return self._primary()

    def _primary(self) -> LtlFormula:
        token = self._advance()
        if token.kind == "op" and token.text == "(":
            inner = self._until()
            closing = self._advance()
            if closing.text != ")":
                raise LtlError(f"expected ')' at {closing.pos}")
            return inner
        if token.kind == "name":
            if token.text == "true":
                return TRUE_LTL
            if token.text == "false":
                return FALSE_LTL
            if token.text in ("X", "F", "G", "U"):
                raise LtlError(f"operator {token.text} needs an operand")
            return Atom(token.text)
        raise LtlError(f"unexpected token {token.text!r} at {token.pos}")


def parse_ltl(source: str) -> LtlFormula:
    """Parse textual LTL, e.g. ``"G (req -> is not supported; use | !)"``.

    >>> parse_ltl("F (req & X ack)")
    F ((req & X (ack)))
    """
    return _LtlParser(_tokenize(source)).parse()
