"""Hand-written monitors: the manual-development baseline of Figure 4.

The paper motivates automated synthesis by the cost and error-proneness
of writing monitors by hand.  These checkers are written the way a
verification engineer would write them in a native language — explicit
state variables, if/else ladders — and come in a *correct* and a
*buggy* variant each.  The buggy variants contain realistic slips
(an off-by-one phase check, a forgotten re-arm) that the flow benchmark
exposes by differencing against the synthesized monitor.
"""

from repro.baselines.manual.amba_manual import (
    ManualAhbMonitor,
    ManualAhbMonitorBuggy,
)
from repro.baselines.manual.ocp_manual import (
    ManualOcpBurstMonitor,
    ManualOcpReadMonitor,
    ManualOcpReadMonitorBuggy,
)

__all__ = [
    "ManualAhbMonitor",
    "ManualAhbMonitorBuggy",
    "ManualOcpBurstMonitor",
    "ManualOcpReadMonitor",
    "ManualOcpReadMonitorBuggy",
]
