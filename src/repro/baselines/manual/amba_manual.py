"""Hand-written AMBA AHB CLI transaction monitors (Figure 8 baseline)."""

from __future__ import annotations

from typing import Iterable, List

from repro.logic.valuation import Valuation

__all__ = ["ManualAhbMonitor", "ManualAhbMonitorBuggy"]

_SETUP = ("init_transaction", "master_complete", "get_slave", "write",
          "control_info")
_DATA = ("master_set_data", "master_complete2", "bus_set_data",
         "bus_response")
_CLOSE = ("master_response",)


class ManualAhbMonitor:
    """Three-phase AHB CLI transaction checker, written by hand."""

    def __init__(self):
        self._phase = 0
        self._tick = 0
        self.detections: List[int] = []

    @property
    def accepted(self) -> bool:
        return bool(self.detections)

    def _all(self, valuation: Valuation, names) -> bool:
        return all(valuation.is_true(n) for n in names)

    def step(self, valuation: Valuation) -> None:
        if self._phase == 0:
            if self._all(valuation, _SETUP):
                self._phase = 1
        elif self._phase == 1:
            if self._all(valuation, _DATA):
                self._phase = 2
            elif self._all(valuation, _SETUP):
                self._phase = 1  # restart on a fresh setup cycle
            else:
                self._phase = 0
        else:
            if self._all(valuation, _CLOSE):
                self.detections.append(self._tick)
            if self._all(valuation, _SETUP):
                self._phase = 1
            else:
                self._phase = 0
        self._tick += 1

    def feed(self, trace: Iterable[Valuation]) -> "ManualAhbMonitor":
        for valuation in trace:
            self.step(valuation)
        return self


class ManualAhbMonitorBuggy(ManualAhbMonitor):
    """Manual slip: the data phase check misses ``bus_response``.

    A typical transcription error from the waveform in the standard —
    the engineer checked three of the four data-phase signals.  The
    checker *over-accepts*: a bus that never responds still "passes".
    """

    def step(self, valuation: Valuation) -> None:
        if self._phase == 0:
            if self._all(valuation, _SETUP):
                self._phase = 1
        elif self._phase == 1:
            # BUG: bus_response omitted from the phase check.
            if self._all(valuation, ("master_set_data", "master_complete2",
                                     "bus_set_data")):
                self._phase = 2
            else:
                self._phase = 0
        else:
            if self._all(valuation, _CLOSE):
                self.detections.append(self._tick)
            self._phase = 0
        self._tick += 1
