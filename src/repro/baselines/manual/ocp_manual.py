"""Hand-written OCP monitors (the manual baseline for Figs. 6-7)."""

from __future__ import annotations

from typing import Iterable, List

from repro.logic.valuation import Valuation

__all__ = [
    "ManualOcpReadMonitor",
    "ManualOcpReadMonitorBuggy",
    "ManualOcpBurstMonitor",
]


class ManualOcpReadMonitor:
    """Simple-read checker as an engineer would write it by hand.

    Phase 0: wait for a fully-formed read command (command, address and
    same-cycle accept).  Phase 1: the next cycle must carry response
    and data.  Overlap handling mirrors the synthesized monitor: a new
    command in the response cycle starts the next attempt.
    """

    def __init__(self):
        self._awaiting_response = False
        self._tick = 0
        self.detections: List[int] = []

    @property
    def accepted(self) -> bool:
        return bool(self.detections)

    def step(self, valuation: Valuation) -> None:
        command = (
            valuation.is_true("MCmd_rd")
            and valuation.is_true("Addr")
            and valuation.is_true("SCmd_accept")
        )
        if self._awaiting_response:
            if valuation.is_true("SResp") and valuation.is_true("SData"):
                self.detections.append(self._tick)
            self._awaiting_response = False
        if command:
            self._awaiting_response = True
        self._tick += 1

    def feed(self, trace: Iterable[Valuation]) -> "ManualOcpReadMonitor":
        for valuation in trace:
            self.step(valuation)
        return self


class ManualOcpReadMonitorBuggy(ManualOcpReadMonitor):
    """The same checker with a realistic manual slip.

    The engineer forgot that a response can coincide with the *next*
    command (pipelining) and clears the armed flag *before* checking
    the response — the classic order-of-updates bug.  On back-to-back
    transactions it silently drops detections.
    """

    def step(self, valuation: Valuation) -> None:
        command = (
            valuation.is_true("MCmd_rd")
            and valuation.is_true("Addr")
            and valuation.is_true("SCmd_accept")
        )
        if command:
            # BUG: re-arming first erases the pending obligation, so a
            # response arriving in this same cycle is never checked.
            self._awaiting_response = True
        elif self._awaiting_response:
            if valuation.is_true("SResp") and valuation.is_true("SData"):
                self.detections.append(self._tick)
            self._awaiting_response = False
        self._tick += 1


class ManualOcpBurstMonitor:
    """Hand-written burst-of-4 tracker with explicit counters.

    Keeps the outstanding burst annotations in a list (a hand-rolled
    scoreboard) and walks a six-phase sequence matching Figure 7's
    grid lines.
    """

    _EXPECTED = (
        ("MCmd_rd", "Burst4", "Addr", "SCmd_accept"),
        ("MCmd_rd", "Burst3", "Addr"),
        ("MCmd_rd", "Burst2", "Addr", "SResp", "SData"),
        ("MCmd_rd", "Burst1", "Addr", "SResp", "SData"),
        ("SResp", "SData"),
        ("SResp", "SData"),
    )

    def __init__(self):
        self._phase = 0
        self._outstanding: List[str] = []
        self._tick = 0
        self.detections: List[int] = []

    @property
    def accepted(self) -> bool:
        return bool(self.detections)

    def step(self, valuation: Valuation) -> None:
        expected = self._EXPECTED[self._phase]
        if all(valuation.is_true(name) for name in expected):
            if self._phase < 4:
                burst = expected[1] if self._phase < 4 else None
                if burst and burst.startswith("Burst"):
                    self._outstanding.append(burst)
            self._phase += 1
            if self._phase == len(self._EXPECTED):
                self.detections.append(self._tick)
                self._phase = 0
                self._outstanding.clear()
        else:
            # Restart; a command cycle can begin a fresh burst.
            self._outstanding.clear()
            first = self._EXPECTED[0]
            if all(valuation.is_true(name) for name in first):
                self._phase = 1
                self._outstanding.append("Burst4")
            else:
                self._phase = 0
        self._tick += 1

    def feed(self, trace: Iterable[Valuation]) -> "ManualOcpBurstMonitor":
        for valuation in trace:
            self.step(valuation)
        return self
