"""LTL monitor construction by formula progression (the [17]/[18] route).

The classic runtime-verification construction (Geilen's and FoCs-style
monitors): the monitor's state *is* a formula; on each input valuation
the formula is *progressed* — rewritten into what must hold of the
remaining trace.  Detection fires when the progressed formula is
satisfied by the empty continuation.  The reachable progressed-formula
set is this route's automaton; its size (compared against the ``Tr``
monitor's ``n+1`` states) is the paper's implicit scalability argument
for synthesizing directly from charts.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.baselines.ltl import (
    Always,
    Atom,
    Eventually,
    FALSE_LTL,
    LtlAnd,
    LtlFalse,
    LtlFormula,
    LtlNot,
    LtlOr,
    LtlTrue,
    Next,
    TRUE_LTL,
    Until,
)
from repro.errors import LtlError
from repro.logic.valuation import Valuation, enumerate_valuations
from repro.semantics.run import Trace

__all__ = ["progress", "empty_accepts", "LtlProgressionMonitor"]


def _mk_and(left: LtlFormula, right: LtlFormula) -> LtlFormula:
    if isinstance(left, LtlFalse) or isinstance(right, LtlFalse):
        return FALSE_LTL
    if isinstance(left, LtlTrue):
        return right
    if isinstance(right, LtlTrue):
        return left
    if left == right:
        return left
    return LtlAnd(left, right)


def _mk_or(left: LtlFormula, right: LtlFormula) -> LtlFormula:
    if isinstance(left, LtlTrue) or isinstance(right, LtlTrue):
        return TRUE_LTL
    if isinstance(left, LtlFalse):
        return right
    if isinstance(right, LtlFalse):
        return left
    if left == right:
        return left
    return LtlOr(left, right)


def progress(formula: LtlFormula, valuation: Valuation) -> LtlFormula:
    """One step of Bacchus-Kabanza progression."""
    if isinstance(formula, (LtlTrue, LtlFalse)):
        return formula
    if isinstance(formula, Atom):
        return TRUE_LTL if valuation.is_true(formula.name) else FALSE_LTL
    if isinstance(formula, LtlNot):
        inner = progress(formula.operand, valuation)
        if isinstance(inner, LtlTrue):
            return FALSE_LTL
        if isinstance(inner, LtlFalse):
            return TRUE_LTL
        return LtlNot(inner)
    if isinstance(formula, LtlAnd):
        return _mk_and(progress(formula.left, valuation),
                       progress(formula.right, valuation))
    if isinstance(formula, LtlOr):
        return _mk_or(progress(formula.left, valuation),
                      progress(formula.right, valuation))
    if isinstance(formula, Next):
        return formula.operand
    if isinstance(formula, Eventually):
        return _mk_or(progress(formula.operand, valuation), formula)
    if isinstance(formula, Always):
        return _mk_and(progress(formula.operand, valuation), formula)
    if isinstance(formula, Until):
        return _mk_or(
            progress(formula.right, valuation),
            _mk_and(progress(formula.left, valuation), formula),
        )
    raise LtlError(f"cannot progress {formula!r}")


def empty_accepts(formula: LtlFormula) -> bool:
    """Would the empty continuation satisfy the progressed formula?

    LTLf semantics on the empty suffix: atoms and strong ``X`` fail,
    ``G`` holds, ``F``/``U`` fail.
    """
    if isinstance(formula, LtlTrue):
        return True
    if isinstance(formula, (LtlFalse, Atom, Next, Eventually, Until)):
        return False
    if isinstance(formula, LtlNot):
        return not empty_accepts(formula.operand)
    if isinstance(formula, LtlAnd):
        return empty_accepts(formula.left) and empty_accepts(formula.right)
    if isinstance(formula, LtlOr):
        return empty_accepts(formula.left) or empty_accepts(formula.right)
    if isinstance(formula, Always):
        return True
    raise LtlError(f"cannot evaluate empty continuation of {formula!r}")


class LtlProgressionMonitor:
    """Runtime monitor whose state is the progressed formula.

    Detection at tick ``i`` means the original formula's *scenario
    payload* completed at ``i`` — for co-safety formulas (the
    ``F(conjunction of nested X)`` shape CESC translation produces) the
    progressed formula passes the empty-continuation test at exactly
    the window-end ticks.
    """

    def __init__(self, formula: LtlFormula):
        self._initial = formula
        self._state = formula
        self._tick = 0
        self._detections: List[int] = []

    @property
    def state(self) -> LtlFormula:
        return self._state

    @property
    def detections(self) -> List[int]:
        return list(self._detections)

    @property
    def accepted(self) -> bool:
        return bool(self._detections)

    def step(self, valuation: Valuation) -> LtlFormula:
        self._state = progress(self._state, valuation)
        if empty_accepts(self._state):
            self._detections.append(self._tick)
        self._tick += 1
        return self._state

    def feed(self, trace: Iterable[Valuation]) -> "LtlProgressionMonitor":
        for valuation in trace:
            self.step(valuation)
        return self

    def reset(self) -> None:
        self._state = self._initial
        self._tick = 0
        self._detections = []

    # -- automaton view ------------------------------------------------------
    def reachable_states(self, alphabet: Iterable[str],
                         limit: int = 10_000) -> Set[LtlFormula]:
        """All progressed formulas reachable over the given alphabet.

        The size of this set is the formula-progression automaton's
        state count — the baseline figure the scaling bench compares
        against ``Tr``'s ``n + 1``.
        """
        symbols = sorted(set(alphabet))
        seen: Set[LtlFormula] = {self._initial}
        frontier: List[LtlFormula] = [self._initial]
        while frontier:
            state = frontier.pop()
            for valuation in enumerate_valuations(symbols):
                successor = progress(state, valuation)
                if successor not in seen:
                    if len(seen) >= limit:
                        raise LtlError(
                            f"progression automaton exceeded {limit} states"
                        )
                    seen.add(successor)
                    frontier.append(successor)
        return seen
