"""Boolean expression AST over events, propositions and scoreboard checks.

The paper defines monitor transition guards as "logical expressions
formed over EVENTS and PROP using logical connectives AND, OR and NOT
with their standard meaning", extended with ``Chk_evt(e)`` guards that
consult the dynamic scoreboard.  This module provides that expression
language as an immutable, hashable AST.

Expressions evaluate against a :class:`~repro.logic.valuation.Valuation`
(an assignment of truth values to event and proposition symbols) and,
optionally, a scoreboard object exposing ``contains(event) -> bool`` for
``Chk_evt`` atoms.

Design notes
------------
* ``And``/``Or`` are n-ary with a flattened, deduplicated, *ordered*
  argument tuple so that structurally equal guards compare and hash
  equal — the synthesis code relies on this when grouping transitions.
* Expressions are immutable; all rewriting helpers return new nodes.
* The kind of a symbol (event vs proposition) is carried by the atom
  class (:class:`EventRef` / :class:`PropRef`), mirroring the paper's
  ``f1 : PROP -> Bool`` / ``f2 : EVENTS -> Bool`` split.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator, Mapping, Optional, Tuple

from repro.errors import ExprError
from repro.slots import SlotPickle

__all__ = [
    "Expr",
    "Const",
    "TRUE",
    "FALSE",
    "EventRef",
    "PropRef",
    "ScoreboardCheck",
    "Not",
    "And",
    "Or",
    "all_of",
    "any_of",
    "intern_expr",
    "symbols_of",
    "event_symbols_of",
    "prop_symbols_of",
    "scoreboard_checks_of",
    "substitute_checks",
]


class Expr(SlotPickle):
    """Base class for Boolean expressions.

    Subclasses are immutable and hashable.  The public operations are:

    * :meth:`evaluate` — truth value under a valuation (+ scoreboard);
    * :meth:`atoms` — the set of atomic sub-expressions;
    * operator overloads ``&``, ``|``, ``~`` building new expressions.
    """

    __slots__ = ()

    def evaluate(self, valuation, scoreboard=None) -> bool:
        """Return the truth value of this expression.

        ``valuation`` may be a :class:`~repro.logic.valuation.Valuation`
        or any object with ``is_true(symbol) -> bool``.  ``scoreboard``
        must expose ``contains(event) -> bool`` when the expression
        contains :class:`ScoreboardCheck` atoms.
        """
        raise NotImplementedError

    def atoms(self) -> FrozenSet["Expr"]:
        """Return the atomic sub-expressions (refs, checks, consts)."""
        raise NotImplementedError

    def children(self) -> Tuple["Expr", ...]:
        """Return direct sub-expressions (empty for atoms)."""
        return ()

    # -- operator sugar -------------------------------------------------
    def __and__(self, other: "Expr") -> "Expr":
        return And((self, other))

    def __or__(self, other: "Expr") -> "Expr":
        return Or((self, other))

    def __invert__(self) -> "Expr":
        return Not(self)

    # -- lowering -------------------------------------------------------
    def compile(self, codec):
        """Lower this guard to a closure ``(mask, scoreboard) -> bool``.

        ``codec`` fixes the symbol ordering (any object with a
        ``bit_of: symbol -> bit`` mapping, typically an
        :class:`~repro.logic.codec.AlphabetCodec`); ``mask`` is the
        input valuation encoded under that ordering.  Symbols absent
        from the codec read false, mirroring :meth:`evaluate` against a
        restricted valuation.  ``Chk_evt`` atoms consult the scoreboard
        argument at call time, so one compiled guard serves every
        scoreboard state.
        """
        raise NotImplementedError

    # -- rewriting ------------------------------------------------------
    def simplify(self) -> "Expr":
        """Return a lightly simplified equivalent expression.

        Performs constant folding, involution (``~~x -> x``), unit and
        absorption laws, and complementary-literal collapse inside a
        single ``And``/``Or``.  It is *not* a full minimiser — see
        :mod:`repro.logic.qm` for two-level minimisation.
        """
        return self

    def nnf(self) -> "Expr":
        """Return an equivalent expression in negation normal form."""
        return self

    def negate_nnf(self) -> "Expr":
        """Return the negation of this expression, in NNF."""
        return Not(self).nnf()


class Const(Expr):
    """Boolean constant (``TRUE`` / ``FALSE``)."""

    __slots__ = ("value",)

    def __init__(self, value: bool):
        object.__setattr__(self, "value", bool(value))

    def __setattr__(self, name, value):
        raise AttributeError("Const is immutable")

    def evaluate(self, valuation, scoreboard=None) -> bool:
        return self.value

    def atoms(self) -> FrozenSet[Expr]:
        return frozenset()

    def compile(self, codec):
        value = self.value
        return lambda mask, scoreboard=None: value

    def simplify(self) -> Expr:
        return TRUE if self.value else FALSE

    def nnf(self) -> Expr:
        return self.simplify()

    def __reduce__(self):
        return (type(self), (self.value,))

    def __eq__(self, other):
        return isinstance(other, Const) and self.value == other.value

    def __hash__(self):
        return hash(("Const", self.value))

    def __repr__(self):
        return "TRUE" if self.value else "FALSE"


TRUE = Const(True)
FALSE = Const(False)


class _Ref(Expr):
    """Common base for named atoms (events and propositions)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not name or not isinstance(name, str):
            raise ExprError(f"atom name must be a non-empty string, got {name!r}")
        object.__setattr__(self, "name", name)

    def __setattr__(self, name, value):
        raise AttributeError(f"{type(self).__name__} is immutable")

    def evaluate(self, valuation, scoreboard=None) -> bool:
        return bool(valuation.is_true(self.name))

    def compile(self, codec):
        bit = codec.bit_of.get(self.name)
        if bit is None:
            # Outside the restricted alphabet: always reads false.
            return lambda mask, scoreboard=None: False
        return lambda mask, scoreboard=None: bool(mask & bit)

    def atoms(self) -> FrozenSet[Expr]:
        return frozenset({self})

    def __reduce__(self):
        return (type(self), (self.name,))

    def __eq__(self, other):
        return type(self) is type(other) and self.name == other.name

    def __hash__(self):
        return hash((type(self).__name__, self.name))

    def __repr__(self):
        return self.name


class EventRef(_Ref):
    """Reference to an event symbol (``f2 : EVENTS -> Bool``)."""

    __slots__ = ()


class PropRef(_Ref):
    """Reference to a proposition symbol (``f1 : PROP -> Bool``)."""

    __slots__ = ()


class ScoreboardCheck(Expr):
    """``Chk_evt(e)`` — true iff the scoreboard currently records ``e``.

    The paper's causality checks attach these atoms to guards of
    transitions that depend on a causally-downstream event; they are
    evaluated against the dynamic scoreboard rather than the input
    valuation.
    """

    __slots__ = ("event",)

    def __init__(self, event: str):
        if not event or not isinstance(event, str):
            raise ExprError(f"Chk_evt needs an event name, got {event!r}")
        object.__setattr__(self, "event", event)

    def __setattr__(self, name, value):
        raise AttributeError("ScoreboardCheck is immutable")

    def evaluate(self, valuation, scoreboard=None) -> bool:
        if scoreboard is None:
            raise ExprError(
                f"Chk_evt({self.event}) requires a scoreboard to evaluate"
            )
        return bool(scoreboard.contains(self.event))

    def compile(self, codec):
        event = self.event

        def check(mask, scoreboard=None):
            if scoreboard is None:
                raise ExprError(
                    f"Chk_evt({event}) requires a scoreboard to evaluate"
                )
            return bool(scoreboard.contains(event))

        return check

    def atoms(self) -> FrozenSet[Expr]:
        return frozenset({self})

    def __reduce__(self):
        return (type(self), (self.event,))

    def __eq__(self, other):
        return isinstance(other, ScoreboardCheck) and self.event == other.event

    def __hash__(self):
        return hash(("Chk_evt", self.event))

    def __repr__(self):
        return f"Chk_evt({self.event})"


class Not(Expr):
    """Logical negation."""

    __slots__ = ("operand",)

    def __init__(self, operand: Expr):
        if not isinstance(operand, Expr):
            raise ExprError(f"Not operand must be an Expr, got {operand!r}")
        object.__setattr__(self, "operand", operand)

    def __setattr__(self, name, value):
        raise AttributeError("Not is immutable")

    def evaluate(self, valuation, scoreboard=None) -> bool:
        return not self.operand.evaluate(valuation, scoreboard)

    def compile(self, codec):
        inner = self.operand.compile(codec)
        return lambda mask, scoreboard=None: not inner(mask, scoreboard)

    def atoms(self) -> FrozenSet[Expr]:
        return self.operand.atoms()

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def simplify(self) -> Expr:
        inner = self.operand.simplify()
        if isinstance(inner, Const):
            return FALSE if inner.value else TRUE
        if isinstance(inner, Not):
            return inner.operand.simplify()
        return Not(inner)

    def nnf(self) -> Expr:
        inner = self.operand
        if isinstance(inner, Const):
            return FALSE if inner.value else TRUE
        if isinstance(inner, Not):
            return inner.operand.nnf()
        if isinstance(inner, And):
            return Or(tuple(Not(a).nnf() for a in inner.args))
        if isinstance(inner, Or):
            return And(tuple(Not(a).nnf() for a in inner.args))
        return self

    def __reduce__(self):
        return (type(self), (self.operand,))

    def __eq__(self, other):
        return isinstance(other, Not) and self.operand == other.operand

    def __hash__(self):
        return hash(("Not", self.operand))

    def __repr__(self):
        if isinstance(self.operand, (And, Or)):
            return f"!({self.operand!r})"
        return f"!{self.operand!r}"


def _flatten(cls, args: Iterable[Expr]) -> Tuple[Expr, ...]:
    """Flatten nested same-class n-ary nodes and deduplicate in order."""
    out = []
    seen = set()
    for arg in args:
        if not isinstance(arg, Expr):
            raise ExprError(f"connective argument must be an Expr, got {arg!r}")
        parts = arg.args if isinstance(arg, cls) else (arg,)
        for part in parts:
            if part not in seen:
                seen.add(part)
                out.append(part)
    return tuple(out)


class _Nary(Expr):
    """Common base for ``And`` / ``Or``."""

    __slots__ = ("args",)
    _identity: Const
    _dominator: Const
    _symbol: str

    def __init__(self, args: Iterable[Expr]):
        flat = _flatten(type(self), args)
        object.__setattr__(self, "args", flat)

    def __setattr__(self, name, value):
        raise AttributeError(f"{type(self).__name__} is immutable")

    def atoms(self) -> FrozenSet[Expr]:
        result: FrozenSet[Expr] = frozenset()
        for arg in self.args:
            result |= arg.atoms()
        return result

    def children(self) -> Tuple[Expr, ...]:
        return self.args

    def simplify(self) -> Expr:
        cls = type(self)
        parts = []
        seen = set()
        for arg in self.args:
            simp = arg.simplify()
            if simp == self._dominator:
                return self._dominator
            if simp == self._identity:
                continue
            inner = simp.args if isinstance(simp, cls) else (simp,)
            for part in inner:
                if part in seen:
                    continue
                seen.add(part)
                parts.append(part)
        for part in parts:
            complement = part.operand if isinstance(part, Not) else Not(part)
            if complement in seen:
                return self._dominator
        if not parts:
            return self._identity
        if len(parts) == 1:
            return parts[0]
        return cls(tuple(parts))

    def nnf(self) -> Expr:
        return type(self)(tuple(a.nnf() for a in self.args))

    def __reduce__(self):
        return (type(self), (self.args,))

    def __eq__(self, other):
        return type(self) is type(other) and self.args == other.args

    def __hash__(self):
        return hash((type(self).__name__, self.args))

    def __repr__(self):
        if not self.args:
            return repr(self._identity)
        rendered = []
        for arg in self.args:
            text = repr(arg)
            if isinstance(arg, _Nary) and type(arg) is not type(self):
                text = f"({text})"
            rendered.append(text)
        return f" {self._symbol} ".join(rendered)


class And(_Nary):
    """N-ary conjunction (``a & b & ...``)."""

    __slots__ = ()
    _identity = TRUE
    _dominator = FALSE
    _symbol = "&"

    def evaluate(self, valuation, scoreboard=None) -> bool:
        return all(arg.evaluate(valuation, scoreboard) for arg in self.args)

    def compile(self, codec):
        fns = tuple(arg.compile(codec) for arg in self.args)
        if not fns:
            return lambda mask, scoreboard=None: True
        if len(fns) == 1:
            return fns[0]
        return lambda mask, scoreboard=None: all(
            fn(mask, scoreboard) for fn in fns
        )


class Or(_Nary):
    """N-ary disjunction (``a | b | ...``)."""

    __slots__ = ()
    _identity = FALSE
    _dominator = TRUE
    _symbol = "|"

    def evaluate(self, valuation, scoreboard=None) -> bool:
        return any(arg.evaluate(valuation, scoreboard) for arg in self.args)

    def compile(self, codec):
        fns = tuple(arg.compile(codec) for arg in self.args)
        if not fns:
            return lambda mask, scoreboard=None: False
        if len(fns) == 1:
            return fns[0]
        return lambda mask, scoreboard=None: any(
            fn(mask, scoreboard) for fn in fns
        )


def all_of(exprs: Iterable[Expr]) -> Expr:
    """Conjunction of ``exprs`` (``TRUE`` when empty), simplified."""
    return And(tuple(exprs)).simplify()


def any_of(exprs: Iterable[Expr]) -> Expr:
    """Disjunction of ``exprs`` (``FALSE`` when empty), simplified."""
    return Or(tuple(exprs)).simplify()


def intern_expr(expr: Expr, cache: Optional[dict] = None) -> Expr:
    """Hash-cons ``expr``: equal subtrees become the *same* object.

    Synthesis and minimisation build guards bottom-up without sharing,
    so a monitor's transitions typically hold hundreds of structurally
    equal but distinct subtrees.  Interning them makes equality checks
    short-circuit on identity and — because pickle memoizes by object
    identity — collapses the serialized payload to one copy per
    distinct subtree.  The result is ``==`` to the input.

    Pass a shared ``cache`` to intern across several expressions (e.g.
    every guard of a monitor).
    """
    if cache is None:
        cache = {}

    def visit(node: Expr) -> Expr:
        interned = cache.get(node)
        if interned is not None:
            return interned
        if isinstance(node, _Nary):
            args = tuple(visit(arg) for arg in node.args)
            if any(new is not old for new, old in zip(args, node.args)):
                node = type(node)(args)
        elif isinstance(node, Not):
            operand = visit(node.operand)
            if operand is not node.operand:
                node = Not(operand)
        return cache.setdefault(node, node)

    return visit(expr)


def _walk(expr: Expr) -> Iterator[Expr]:
    yield expr
    for child in expr.children():
        yield from _walk(child)


def symbols_of(expr: Expr) -> FrozenSet[str]:
    """All event and proposition symbol names referenced by ``expr``.

    ``Chk_evt`` atoms are *not* included: they read the scoreboard, not
    the input valuation, so they do not enlarge the input alphabet.
    """
    return frozenset(
        node.name for node in _walk(expr) if isinstance(node, _Ref)
    )


def event_symbols_of(expr: Expr) -> FrozenSet[str]:
    """Event symbol names referenced by ``expr``."""
    return frozenset(
        node.name for node in _walk(expr) if isinstance(node, EventRef)
    )


def prop_symbols_of(expr: Expr) -> FrozenSet[str]:
    """Proposition symbol names referenced by ``expr``."""
    return frozenset(
        node.name for node in _walk(expr) if isinstance(node, PropRef)
    )


def scoreboard_checks_of(expr: Expr) -> FrozenSet[str]:
    """Event names appearing under ``Chk_evt`` atoms in ``expr``."""
    return frozenset(
        node.event for node in _walk(expr) if isinstance(node, ScoreboardCheck)
    )


def substitute_checks(expr: Expr, values: Mapping[str, bool]) -> Expr:
    """Replace ``Chk_evt(e)`` atoms by constants according to ``values``.

    Used when reasoning about guards purely over the input alphabet
    (e.g. inside SAT-based compatibility checks, where the scoreboard
    state is abstracted away).  Checks absent from ``values`` are left
    in place.
    """
    if isinstance(expr, ScoreboardCheck):
        if expr.event in values:
            return TRUE if values[expr.event] else FALSE
        return expr
    if isinstance(expr, Not):
        return Not(substitute_checks(expr.operand, values))
    if isinstance(expr, _Nary):
        return type(expr)(
            tuple(substitute_checks(a, values) for a in expr.args)
        )
    return expr
