"""Reduced ordered binary decision diagrams (ROBDDs).

A compact canonical representation for guard expressions, used by the
equivalence checker (`repro.analysis.equivalence`) and available as an
alternative to SAT for tautology/equivalence queries.  The manager
interns nodes (unique table) and memoises the if-then-else operator
(computed table), so equal functions share one node and equivalence is
a pointer comparison.

Variables are identified by the same ``(kind, name)`` keys the SAT
layer uses; ordering is fixed at manager construction (or grown on
first use, appended at the bottom).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, List, Optional, Tuple

from repro.logic.expr import (
    And,
    Const,
    EventRef,
    Expr,
    Not,
    Or,
    PropRef,
    ScoreboardCheck,
)

__all__ = ["BddManager", "BddNode"]

VarKey = Hashable


class BddNode:
    """A node in the shared BDD forest (terminal or decision node)."""

    __slots__ = ("var", "low", "high", "_id")

    def __init__(self, var: Optional[int], low, high, node_id: int):
        object.__setattr__(self, "var", var)
        object.__setattr__(self, "low", low)
        object.__setattr__(self, "high", high)
        object.__setattr__(self, "_id", node_id)

    def __setattr__(self, name, value):
        raise AttributeError("BddNode is immutable")

    @property
    def is_terminal(self) -> bool:
        return self.var is None

    def __repr__(self):
        if self.is_terminal:
            return "BDD(1)" if self.high else "BDD(0)"
        return f"BDD(var={self.var}, id={self._id})"


class BddManager:
    """Owns the unique/computed tables and the variable order."""

    def __init__(self, order: Optional[List[VarKey]] = None):
        self._order: List[VarKey] = []
        self._level: Dict[VarKey, int] = {}
        self._unique: Dict[Tuple[int, int, int], BddNode] = {}
        self._ite_cache: Dict[Tuple[int, int, int], BddNode] = {}
        self._next_id = 2
        self.zero = BddNode(None, None, False, 0)
        self.one = BddNode(None, None, True, 1)
        for key in order or []:
            self.declare(key)

    # -- variables --------------------------------------------------------
    def declare(self, key: VarKey) -> int:
        """Register ``key`` at the next level; return its level index."""
        if key not in self._level:
            self._level[key] = len(self._order)
            self._order.append(key)
        return self._level[key]

    def var(self, key: VarKey) -> BddNode:
        """BDD for the single variable ``key``."""
        level = self.declare(key)
        return self._node(level, self.zero, self.one)

    # -- construction -------------------------------------------------------
    def _node(self, level: int, low: BddNode, high: BddNode) -> BddNode:
        if low is high:
            return low
        signature = (level, low._id, high._id)
        node = self._unique.get(signature)
        if node is None:
            node = BddNode(level, low, high, self._next_id)
            self._next_id += 1
            self._unique[signature] = node
        return node

    def ite(self, cond: BddNode, then: BddNode, other: BddNode) -> BddNode:
        """If-then-else — the universal BDD combinator."""
        if cond is self.one:
            return then
        if cond is self.zero:
            return other
        if then is other:
            return then
        if then is self.one and other is self.zero:
            return cond
        signature = (cond._id, then._id, other._id)
        cached = self._ite_cache.get(signature)
        if cached is not None:
            return cached
        top = min(
            node.var
            for node in (cond, then, other)
            if not node.is_terminal
        )

        def cofactor(node: BddNode, value: bool) -> BddNode:
            if node.is_terminal or node.var != top:
                return node
            return node.high if value else node.low

        high = self.ite(cofactor(cond, True), cofactor(then, True), cofactor(other, True))
        low = self.ite(cofactor(cond, False), cofactor(then, False), cofactor(other, False))
        result = self._node(top, low, high)
        self._ite_cache[signature] = result
        return result

    def apply_and(self, left: BddNode, right: BddNode) -> BddNode:
        return self.ite(left, right, self.zero)

    def apply_or(self, left: BddNode, right: BddNode) -> BddNode:
        return self.ite(left, self.one, right)

    def apply_not(self, node: BddNode) -> BddNode:
        return self.ite(node, self.zero, self.one)

    # -- expression bridge ---------------------------------------------------
    def from_expr(self, expr: Expr) -> BddNode:
        """Build the BDD of an :class:`~repro.logic.expr.Expr`.

        ``Chk_evt(e)`` atoms become ordinary variables keyed
        ``("chk", e)`` — the same abstraction as the SAT layer.
        """
        if isinstance(expr, Const):
            return self.one if expr.value else self.zero
        if isinstance(expr, EventRef):
            return self.var(("e", expr.name))
        if isinstance(expr, PropRef):
            return self.var(("p", expr.name))
        if isinstance(expr, ScoreboardCheck):
            return self.var(("chk", expr.event))
        if isinstance(expr, Not):
            return self.apply_not(self.from_expr(expr.operand))
        if isinstance(expr, And):
            node = self.one
            for arg in expr.args:
                node = self.apply_and(node, self.from_expr(arg))
            return node
        if isinstance(expr, Or):
            node = self.zero
            for arg in expr.args:
                node = self.apply_or(node, self.from_expr(arg))
            return node
        raise TypeError(f"cannot build BDD for {expr!r}")

    # -- queries -------------------------------------------------------------
    def equivalent(self, left: Expr, right: Expr) -> bool:
        """True iff the two expressions denote the same function."""
        return self.from_expr(left) is self.from_expr(right)

    def tautology(self, expr: Expr) -> bool:
        return self.from_expr(expr) is self.one

    def satisfiable(self, expr: Expr) -> bool:
        return self.from_expr(expr) is not self.zero

    def count_nodes(self, node: BddNode) -> int:
        """Number of distinct decision nodes reachable from ``node``."""
        seen = set()

        def walk(current: BddNode) -> None:
            if current.is_terminal or current._id in seen:
                return
            seen.add(current._id)
            walk(current.low)
            walk(current.high)

        walk(node)
        return len(seen)

    def sat_count(self, node: BddNode, num_vars: Optional[int] = None) -> int:
        """Number of satisfying assignments over ``num_vars`` variables."""
        total_vars = num_vars if num_vars is not None else len(self._order)
        cache: Dict[int, int] = {}

        def walk(current: BddNode, level: int) -> int:
            if current.is_terminal:
                return (1 << (total_vars - level)) if current.high else 0
            key = (current._id, level)
            if key in cache:
                return cache[key]
            skip = current.var - level
            low = walk(current.low, current.var + 1)
            high = walk(current.high, current.var + 1)
            result = (low + high) << skip
            cache[key] = result
            return result

        return walk(node, 0)
