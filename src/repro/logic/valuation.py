"""Valuations: truth assignments over a finite event/proposition alphabet.

The paper's monitor reads "one element of the input trace in a clock
step", where each element is a pair of truth assignments over ``PROP``
and ``EVENTS``.  A :class:`Valuation` is exactly such an element: the
set of symbols that are *true* at one clock tick, together with the
alphabet it is defined over.

Symbols are plain strings; whether a symbol is an event or a
proposition is decided by the expression atoms that reference it
(:class:`~repro.logic.expr.EventRef` vs
:class:`~repro.logic.expr.PropRef`) and, at the chart level, by the
chart's declarations.
"""

from __future__ import annotations

from itertools import combinations
from typing import FrozenSet, Iterable, Iterator, Optional, Sequence

from repro.errors import ExprError
from repro.slots import SlotPickle

__all__ = ["Valuation", "enumerate_valuations"]


class Valuation(SlotPickle):
    """An assignment of truth values to a finite set of symbols.

    ``true`` is the set of symbols assigned ``True``; every other
    symbol of ``alphabet`` is ``False``.  When ``alphabet`` is omitted
    it defaults to ``true`` itself (a *partial* valuation where only
    listed symbols are known-true and everything else reads false).
    """

    __slots__ = ("true", "alphabet")

    def __init__(
        self,
        true: Iterable[str] = (),
        alphabet: Optional[Iterable[str]] = None,
    ):
        true_set = frozenset(true)
        if alphabet is None:
            alpha = true_set
        else:
            alpha = frozenset(alphabet)
            extra = true_set - alpha
            if extra:
                raise ExprError(
                    f"true symbols {sorted(extra)} not in alphabet"
                )
        object.__setattr__(self, "true", true_set)
        object.__setattr__(self, "alphabet", alpha)

    def __setattr__(self, name, value):
        raise AttributeError("Valuation is immutable")

    # -- queries ---------------------------------------------------------
    def is_true(self, symbol: str) -> bool:
        """Truth value of ``symbol`` (absent symbols read ``False``)."""
        return symbol in self.true

    def restricted(self, alphabet: Iterable[str]) -> "Valuation":
        """Project onto ``alphabet`` (symbols outside it are dropped)."""
        alpha = frozenset(alphabet)
        return Valuation(self.true & alpha, alpha)

    def extended(self, other: "Valuation") -> "Valuation":
        """Union of two valuations over the union of their alphabets."""
        return Valuation(self.true | other.true, self.alphabet | other.alphabet)

    def with_true(self, *symbols: str) -> "Valuation":
        """Copy with ``symbols`` additionally set true."""
        return Valuation(self.true | set(symbols), self.alphabet | set(symbols))

    def to_mask(self, order: Sequence[str]) -> int:
        """Bitmask of this valuation under a fixed symbol ordering.

        ``order[i]`` owns bit ``1 << i``; symbols of this valuation
        outside ``order`` are dropped (the projection semantics of
        :meth:`restricted`).  The compiled monitor runtime uses these
        masks as dense transition-table indices — see
        :class:`~repro.logic.codec.AlphabetCodec` for the cached
        symbol->bit form used on hot paths.
        """
        true = self.true
        mask = 0
        for index, symbol in enumerate(order):
            if symbol in true:
                mask |= 1 << index
        return mask

    # -- dunder ----------------------------------------------------------
    def __eq__(self, other):
        return (
            isinstance(other, Valuation)
            and self.true == other.true
            and self.alphabet == other.alphabet
        )

    def __hash__(self):
        return hash((self.true, self.alphabet))

    def __contains__(self, symbol: str) -> bool:
        return symbol in self.true

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self.true))

    def __len__(self) -> int:
        return len(self.true)

    def __repr__(self):
        inside = ", ".join(sorted(self.true)) or "-"
        return f"{{{inside}}}"


def enumerate_valuations(
    alphabet: Sequence[str], max_true: Optional[int] = None
) -> Iterator[Valuation]:
    """Yield every valuation over ``alphabet`` (the paper's ``2^Sigma``).

    The synthesis algorithm enumerates "each valuation e in 2^Sigma";
    restricting Sigma to the chart's own symbols keeps this tractable.
    ``max_true`` optionally caps the number of simultaneously-true
    symbols (useful for sparse-event workloads in benchmarks).

    Valuations are yielded in a deterministic order: by popcount, then
    lexicographically.
    """
    symbols = sorted(set(alphabet))
    limit = len(symbols) if max_true is None else min(max_true, len(symbols))
    for size in range(limit + 1):
        for combo in combinations(symbols, size):
            yield Valuation(combo, symbols)
