"""Bitmask encoding of valuations over a fixed symbol ordering.

The synthesis algorithm enumerates "each valuation e in 2^Sigma"; a
valuation over a restricted alphabet of ``k`` symbols is therefore one
of ``2^k`` rows of a dense table.  :class:`AlphabetCodec` fixes the
ordering — symbol ``i`` (in sorted order) owns bit ``1 << i`` — and
converts between :class:`~repro.logic.valuation.Valuation` objects and
their integer row indices.  The compiled monitor runtime
(:mod:`repro.runtime.compiled`) indexes its transition tables with
these masks, replacing per-tick guard-tree interpretation with a list
lookup.

Encoding is total on the *trace* side: symbols outside the codec's
alphabet are simply dropped (they read false under the restricted
alphabet, exactly as :meth:`Valuation.restricted` would make them).
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.errors import ExprError
from repro.logic.valuation import Valuation
from repro.slots import SlotPickle

__all__ = ["AlphabetCodec", "clear_trace_cache", "trace_cache_info"]

#: Valuation enumeration beyond this many symbols is refused — the same
#: tractability cap the synthesis layer applies to ``2^|Sigma|``.
MAX_CODEC_SYMBOLS = 20

#: Shared mask-array cache for :meth:`AlphabetCodec.encode_trace`.
#: Keyed by ``(symbol ordering, id(trace))`` and holding a strong
#: reference to the trace (so the id cannot be recycled while the entry
#: lives); equal codecs — every member of a bank synthesized over the
#: same alphabet builds its own but ``==`` instance — share entries, so
#: a batch run over ``N`` monitors encodes each trace *once*, not ``N``
#: times.  Bounded LRU: dicts iterate in insertion order, so the first
#: key is always the least recently used.
_TRACE_CACHE: Dict[tuple, Tuple[object, array]] = {}
_TRACE_CACHE_LIMIT = 256
_trace_cache_hits = 0
_trace_cache_misses = 0


def trace_cache_info() -> Dict[str, int]:
    """Hit/miss/size counters of the shared ``encode_trace`` cache."""
    return {
        "hits": _trace_cache_hits,
        "misses": _trace_cache_misses,
        "entries": len(_TRACE_CACHE),
    }


def clear_trace_cache() -> None:
    """Drop every cached mask array (tests; memory pressure)."""
    global _trace_cache_hits, _trace_cache_misses
    _TRACE_CACHE.clear()
    _trace_cache_hits = 0
    _trace_cache_misses = 0


class AlphabetCodec(SlotPickle):
    """A fixed, sorted symbol ordering with bitmask conversion.

    ``symbols[i]`` owns bit ``1 << i`` (LSB = first symbol in sorted
    order).  ``size`` is ``2 ** len(symbols)`` — the number of distinct
    valuations, i.e. the row count of a dense transition table.
    """

    __slots__ = ("symbols", "bit_of", "size")

    def __init__(self, symbols: Iterable[str]):
        ordered: Tuple[str, ...] = tuple(sorted(set(symbols)))
        if len(ordered) > MAX_CODEC_SYMBOLS:
            raise ExprError(
                f"alphabet of {len(ordered)} symbols exceeds the "
                f"2^{MAX_CODEC_SYMBOLS} dense-table cap"
            )
        object.__setattr__(self, "symbols", ordered)
        object.__setattr__(
            self, "bit_of", {s: 1 << i for i, s in enumerate(ordered)}
        )
        object.__setattr__(self, "size", 1 << len(ordered))

    def __setattr__(self, name, value):
        raise AttributeError("AlphabetCodec is immutable")

    # -- conversions -----------------------------------------------------
    def encode(self, valuation) -> int:
        """Bitmask of ``valuation`` (a Valuation or iterable of symbols).

        Symbols outside the codec's alphabet are ignored — encoding a
        full-trace valuation against a restricted alphabet projects it,
        mirroring :meth:`Valuation.restricted`.
        """
        true = valuation.true if isinstance(valuation, Valuation) else valuation
        bit_of = self.bit_of
        mask = 0
        for symbol in true:
            bit = bit_of.get(symbol)
            if bit:
                mask |= bit
        return mask

    def _encode_masks(self, trace: Sequence[Valuation]) -> List[int]:
        """The raw per-tick mask list of ``trace`` (no caching)."""
        bit_of_get = self.bit_of.get
        encoded: List[int] = []
        append = encoded.append
        for valuation in trace:
            mask = 0
            for symbol in valuation.true:
                bit = bit_of_get(symbol)
                if bit:
                    mask |= bit
            append(mask)
        return encoded

    def _cache_entry(self, trace: Sequence[Valuation]) -> list:
        global _trace_cache_hits, _trace_cache_misses
        # Identity keying is only sound for immutable traces: a plain
        # list mutated in place keeps its id, and serving the stale
        # masks would silently check the old contents.  Other sequence
        # types encode fresh (local import: codec sits below the
        # semantics layer).
        from repro.semantics.run import Trace

        if not isinstance(trace, Trace):
            return [trace, array("i", self._encode_masks(trace)), None]
        key = (self.symbols, id(trace))
        entry = _TRACE_CACHE.get(key)
        if entry is not None and entry[0] is trace:
            # Refresh recency (insertion order is the eviction order).
            del _TRACE_CACHE[key]
            _TRACE_CACHE[key] = entry
            _trace_cache_hits += 1
            return entry
        _trace_cache_misses += 1
        # The third slot lazily memoizes the plain-list form the
        # scalar batch loop indexes fastest (see encode_trace_list).
        entry = [trace, array("i", self._encode_masks(trace)), None]
        while len(_TRACE_CACHE) >= _TRACE_CACHE_LIMIT:
            _TRACE_CACHE.pop(next(iter(_TRACE_CACHE)))
        _TRACE_CACHE[key] = entry
        return entry

    def encode_trace(self, trace: Sequence[Valuation]) -> array:
        """The whole trace's masks as one reusable ``array('i')``.

        Encoding a trace costs a Python loop per tick; batch runs feed
        the *same* traces to every monitor of a bank (and the vector
        kernel views the result as a NumPy buffer without copying), so
        the arrays are memoized in a shared bounded cache keyed by the
        codec's symbol ordering and the trace's identity.  The returned
        array is shared — treat it as read-only.
        """
        return self._cache_entry(trace)[1]

    def encode_trace_list(self, trace: Sequence[Valuation]) -> List[int]:
        """The cached mask stream as a plain list (shared, read-only).

        Plain lists index fastest in the scalar tick loop; the list
        form is materialised from the cached array once and memoized
        alongside it, so warm batch runs pay no per-call conversion.
        """
        entry = self._cache_entry(trace)
        if entry[2] is None:
            entry[2] = list(entry[1])
        return entry[2]

    def encode_many(self, traces: Iterable[Sequence[Valuation]],
                    as_list: bool = False) -> list:
        """One mask array (or list, ``as_list=True``) per trace.

        Batches at least as large as the cache bypass it entirely: a
        sequential scan over more traces than the cache holds is LRU's
        worst case — every entry would be evicted before its reuse —
        so caching there costs bookkeeping and pins memory for a 0%
        hit rate.  Callers running several monitors over such a batch
        share mask arrays explicitly (see ``MonitorBank.run_batch``).
        """
        if not isinstance(traces, (list, tuple)):
            traces = list(traces)
        if len(traces) >= _TRACE_CACHE_LIMIT:
            encoded = [self._encode_masks(trace) for trace in traces]
            if as_list:
                return encoded
            return [array("i", masks) for masks in encoded]
        if as_list:
            return [self.encode_trace_list(trace) for trace in traces]
        return [self.encode_trace(trace) for trace in traces]

    def decode(self, mask: int) -> Valuation:
        """The valuation (over this codec's alphabet) with bits of ``mask``."""
        if not (0 <= mask < self.size):
            raise ExprError(
                f"mask {mask} outside 0..{self.size - 1} for alphabet "
                f"{list(self.symbols)}"
            )
        true = [s for i, s in enumerate(self.symbols) if mask >> i & 1]
        return Valuation(true, self.symbols)

    def index_of(self, symbol: str) -> int:
        """Bit position of ``symbol`` in the ordering."""
        try:
            return self.symbols.index(symbol)
        except ValueError:
            raise ExprError(f"symbol {symbol!r} not in codec alphabet")

    def all_masks(self) -> range:
        """Every valuation index, ``0 .. size-1``."""
        return range(self.size)

    def truth_table(self, expr) -> int:
        """Bitmap of ``expr`` over all masks: bit ``m`` set iff true at ``m``.

        ``expr`` must not contain scoreboard checks (its truth must be a
        function of the input valuation alone).
        """
        fn = expr.compile(self)
        bitmap = 0
        for mask in range(self.size):
            if fn(mask, None):
                bitmap |= 1 << mask
        return bitmap

    # -- dunder ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.symbols)

    def __contains__(self, symbol: str) -> bool:
        return symbol in self.bit_of

    def __iter__(self) -> Iterator[str]:
        return iter(self.symbols)

    def __eq__(self, other):
        return isinstance(other, AlphabetCodec) and self.symbols == other.symbols

    def __hash__(self):
        return hash(("AlphabetCodec", self.symbols))

    def __repr__(self):
        return f"AlphabetCodec({list(self.symbols)})"
