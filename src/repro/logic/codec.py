"""Bitmask encoding of valuations over a fixed symbol ordering.

The synthesis algorithm enumerates "each valuation e in 2^Sigma"; a
valuation over a restricted alphabet of ``k`` symbols is therefore one
of ``2^k`` rows of a dense table.  :class:`AlphabetCodec` fixes the
ordering — symbol ``i`` (in sorted order) owns bit ``1 << i`` — and
converts between :class:`~repro.logic.valuation.Valuation` objects and
their integer row indices.  The compiled monitor runtime
(:mod:`repro.runtime.compiled`) indexes its transition tables with
these masks, replacing per-tick guard-tree interpretation with a list
lookup.

Encoding is total on the *trace* side: symbols outside the codec's
alphabet are simply dropped (they read false under the restricted
alphabet, exactly as :meth:`Valuation.restricted` would make them).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Tuple

from repro.errors import ExprError
from repro.logic.valuation import Valuation
from repro.slots import SlotPickle

__all__ = ["AlphabetCodec"]

#: Valuation enumeration beyond this many symbols is refused — the same
#: tractability cap the synthesis layer applies to ``2^|Sigma|``.
MAX_CODEC_SYMBOLS = 20


class AlphabetCodec(SlotPickle):
    """A fixed, sorted symbol ordering with bitmask conversion.

    ``symbols[i]`` owns bit ``1 << i`` (LSB = first symbol in sorted
    order).  ``size`` is ``2 ** len(symbols)`` — the number of distinct
    valuations, i.e. the row count of a dense transition table.
    """

    __slots__ = ("symbols", "bit_of", "size")

    def __init__(self, symbols: Iterable[str]):
        ordered: Tuple[str, ...] = tuple(sorted(set(symbols)))
        if len(ordered) > MAX_CODEC_SYMBOLS:
            raise ExprError(
                f"alphabet of {len(ordered)} symbols exceeds the "
                f"2^{MAX_CODEC_SYMBOLS} dense-table cap"
            )
        object.__setattr__(self, "symbols", ordered)
        object.__setattr__(
            self, "bit_of", {s: 1 << i for i, s in enumerate(ordered)}
        )
        object.__setattr__(self, "size", 1 << len(ordered))

    def __setattr__(self, name, value):
        raise AttributeError("AlphabetCodec is immutable")

    # -- conversions -----------------------------------------------------
    def encode(self, valuation) -> int:
        """Bitmask of ``valuation`` (a Valuation or iterable of symbols).

        Symbols outside the codec's alphabet are ignored — encoding a
        full-trace valuation against a restricted alphabet projects it,
        mirroring :meth:`Valuation.restricted`.
        """
        true = valuation.true if isinstance(valuation, Valuation) else valuation
        bit_of = self.bit_of
        mask = 0
        for symbol in true:
            bit = bit_of.get(symbol)
            if bit:
                mask |= bit
        return mask

    def decode(self, mask: int) -> Valuation:
        """The valuation (over this codec's alphabet) with bits of ``mask``."""
        if not (0 <= mask < self.size):
            raise ExprError(
                f"mask {mask} outside 0..{self.size - 1} for alphabet "
                f"{list(self.symbols)}"
            )
        true = [s for i, s in enumerate(self.symbols) if mask >> i & 1]
        return Valuation(true, self.symbols)

    def index_of(self, symbol: str) -> int:
        """Bit position of ``symbol`` in the ordering."""
        try:
            return self.symbols.index(symbol)
        except ValueError:
            raise ExprError(f"symbol {symbol!r} not in codec alphabet")

    def all_masks(self) -> range:
        """Every valuation index, ``0 .. size-1``."""
        return range(self.size)

    def truth_table(self, expr) -> int:
        """Bitmap of ``expr`` over all masks: bit ``m`` set iff true at ``m``.

        ``expr`` must not contain scoreboard checks (its truth must be a
        function of the input valuation alone).
        """
        fn = expr.compile(self)
        bitmap = 0
        for mask in range(self.size):
            if fn(mask, None):
                bitmap |= 1 << mask
        return bitmap

    # -- dunder ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.symbols)

    def __contains__(self, symbol: str) -> bool:
        return symbol in self.bit_of

    def __iter__(self) -> Iterator[str]:
        return iter(self.symbols)

    def __eq__(self, other):
        return isinstance(other, AlphabetCodec) and self.symbols == other.symbols

    def __hash__(self):
        return hash(("AlphabetCodec", self.symbols))

    def __repr__(self):
        return f"AlphabetCodec({list(self.symbols)})"
