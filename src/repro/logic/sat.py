"""Satisfiability utilities: Tseitin CNF encoding and a DPLL solver.

The synthesis algorithm's ``suffix_of`` compatibility check asks, for
two pattern elements ``P[i]`` and ``P[j]``, whether a single trace
element could match both — i.e. whether ``P[i] & P[j]`` is satisfiable.
The equivalence checker and guard-determinism validator additionally
need entailment and tautology queries.  All of these reduce to SAT over
a small variable set, solved here by a straightforward DPLL with unit
propagation and pure-literal elimination.

Atoms are mapped to solver variables as follows: event and proposition
references by their (kind, name) pair, and ``Chk_evt(e)`` atoms by a
distinct ``("chk", e)`` variable — i.e. the scoreboard state is treated
as a free Boolean input, which is the correct abstraction for guard
compatibility (any scoreboard content is reachable in some run).
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.logic.expr import (
    And,
    Const,
    EventRef,
    Expr,
    Not,
    Or,
    PropRef,
    ScoreboardCheck,
)

__all__ = [
    "is_satisfiable",
    "jointly_satisfiable",
    "is_tautology",
    "entails",
    "are_equivalent",
    "satisfying_assignment",
    "satisfying_valuation",
    "to_cnf",
    "dpll",
]

_VarKey = Tuple[str, str]
_Literal = int  # +v / -v, DIMACS style
_Clause = FrozenSet[_Literal]


def _atom_key(atom: Expr) -> _VarKey:
    if isinstance(atom, EventRef):
        return ("e", atom.name)
    if isinstance(atom, PropRef):
        return ("p", atom.name)
    if isinstance(atom, ScoreboardCheck):
        return ("chk", atom.event)
    raise TypeError(f"not a variable atom: {atom!r}")


class _CnfBuilder:
    """Tseitin transformation: each sub-expression gets a defining var."""

    def __init__(self):
        self._next_var = 1
        self._atom_vars: Dict[_VarKey, int] = {}
        self._cache: Dict[Expr, int] = {}
        self.clauses: List[_Clause] = []

    def fresh(self) -> int:
        var = self._next_var
        self._next_var += 1
        return var

    def atom_var(self, key: _VarKey) -> int:
        if key not in self._atom_vars:
            self._atom_vars[key] = self.fresh()
        return self._atom_vars[key]

    def add(self, *literals: int) -> None:
        self.clauses.append(frozenset(literals))

    def encode(self, expr: Expr) -> int:
        """Return a literal equisatisfiable with ``expr``."""
        if expr in self._cache:
            return self._cache[expr]
        literal = self._encode(expr)
        self._cache[expr] = literal
        return literal

    def _encode(self, expr: Expr) -> int:
        if isinstance(expr, Const):
            var = self.fresh()
            self.add(var if expr.value else -var)
            return var
        if isinstance(expr, (EventRef, PropRef, ScoreboardCheck)):
            return self.atom_var(_atom_key(expr))
        if isinstance(expr, Not):
            return -self.encode(expr.operand)
        if isinstance(expr, And):
            if not expr.args:
                return self._encode(Const(True))
            var = self.fresh()
            child_lits = [self.encode(a) for a in expr.args]
            for lit in child_lits:
                self.add(-var, lit)  # var -> each child
            self.add(var, *(-lit for lit in child_lits))  # children -> var
            return var
        if isinstance(expr, Or):
            if not expr.args:
                return self._encode(Const(False))
            var = self.fresh()
            child_lits = [self.encode(a) for a in expr.args]
            for lit in child_lits:
                self.add(var, -lit)  # child -> var
            self.add(-var, *child_lits)  # var -> some child
            return var
        raise TypeError(f"cannot encode expression: {expr!r}")


def to_cnf(exprs: Iterable[Expr]) -> Tuple[List[_Clause], Dict[_VarKey, int]]:
    """Tseitin-encode the conjunction of ``exprs``.

    Returns the clause list plus the atom→variable map so that callers
    can decode satisfying assignments.
    """
    builder = _CnfBuilder()
    for expr in exprs:
        builder.add(builder.encode(expr))
    return builder.clauses, dict(builder._atom_vars)


def dpll(clauses: List[_Clause]) -> Optional[Dict[int, bool]]:
    """Solve CNF ``clauses``; return a model or ``None`` if UNSAT.

    Classic recursive DPLL with unit propagation and a most-frequent
    branching heuristic.  Clause sets in this library are tiny (guards
    over a handful of symbols), so no watched literals are needed.
    """
    assignment: Dict[int, bool] = {}

    def propagate(clause_set: List[_Clause]) -> Optional[List[_Clause]]:
        work = list(clause_set)
        changed = True
        while changed:
            changed = False
            units = [next(iter(c)) for c in work if len(c) == 1]
            if not units:
                break
            for lit in units:
                var, value = abs(lit), lit > 0
                if var in assignment:
                    if assignment[var] != value:
                        return None
                    continue
                assignment[var] = value
                changed = True
                next_work = []
                for clause in work:
                    if lit in clause:
                        continue
                    if -lit in clause:
                        reduced = clause - {-lit}
                        if not reduced:
                            return None
                        next_work.append(reduced)
                    else:
                        next_work.append(clause)
                work = next_work
        return work

    def solve(clause_set: List[_Clause]) -> bool:
        reduced = propagate(clause_set)
        if reduced is None:
            return False
        if not reduced:
            return True
        counts: Dict[int, int] = {}
        for clause in reduced:
            for lit in clause:
                counts[abs(lit)] = counts.get(abs(lit), 0) + 1
        branch_var = max(counts, key=counts.get)
        saved = dict(assignment)
        for value in (True, False):
            lit = branch_var if value else -branch_var
            if solve(reduced + [frozenset({lit})]):
                return True
            assignment.clear()
            assignment.update(saved)
        return False

    if solve(list(clauses)):
        return assignment
    return None


def satisfying_assignment(
    exprs: Iterable[Expr],
) -> Optional[Dict[_VarKey, bool]]:
    """Return a model of the conjunction of ``exprs`` (or ``None``).

    The model maps atom keys (``("e", name)`` / ``("p", name)`` /
    ``("chk", event)``) to Booleans; unconstrained atoms default to
    ``False``.
    """
    clauses, atom_vars = to_cnf(exprs)
    model = dpll(clauses)
    if model is None:
        return None
    return {key: model.get(var, False) for key, var in atom_vars.items()}


def satisfying_valuation(
    exprs: Iterable[Expr],
    alphabet: Iterable[str],
    chk_true: Iterable[str] = (),
    chk_false: Iterable[str] = (),
):
    """Solve ``exprs`` into a concrete trace element (or ``None``).

    The directed stimulus synthesizer walks monitor automata guard by
    guard; each guard must become one *valuation over the monitor's
    alphabet* that provably enables it.  ``chk_true`` / ``chk_false``
    pin ``Chk_evt`` atoms to the scoreboard contents of the path being
    synthesized (unconstrained ``Chk_evt`` atoms stay free variables).

    Symbols the model leaves unconstrained default to false — the
    minimal stimulus — and model atoms outside ``alphabet`` are
    rejected as an error (a guard referencing foreign symbols cannot
    be realised on this alphabet).
    """
    from repro.logic.valuation import Valuation

    alpha = frozenset(alphabet)
    constraints: List[Expr] = list(exprs)
    for event in chk_true:
        constraints.append(ScoreboardCheck(event))
    for event in chk_false:
        constraints.append(Not(ScoreboardCheck(event)))
    model = satisfying_assignment(constraints)
    if model is None:
        return None
    true = set()
    for (kind, name), value in model.items():
        if kind == "chk" or not value:
            continue
        if name not in alpha:
            raise ValueError(
                f"guard references {name!r} outside alphabet "
                f"{sorted(alpha)}"
            )
        true.add(name)
    return Valuation(true, alpha)


def is_satisfiable(expr: Expr) -> bool:
    """True iff some valuation (and scoreboard state) satisfies ``expr``."""
    return satisfying_assignment([expr]) is not None


def jointly_satisfiable(*exprs: Expr) -> bool:
    """True iff one valuation satisfies every expression simultaneously.

    This is the paper's element-compatibility test: a single trace
    element can 'match' each of the given pattern elements.
    """
    return satisfying_assignment(exprs) is not None


def is_tautology(expr: Expr) -> bool:
    """True iff ``expr`` holds under every valuation."""
    return not is_satisfiable(Not(expr))


def entails(antecedent: Expr, consequent: Expr) -> bool:
    """True iff every model of ``antecedent`` satisfies ``consequent``."""
    return not jointly_satisfiable(antecedent, Not(consequent))


def are_equivalent(left: Expr, right: Expr) -> bool:
    """True iff the two expressions have identical truth tables."""
    return entails(left, right) and entails(right, left)
