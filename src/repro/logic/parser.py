"""Recursive-descent parser for textual Boolean guard expressions.

Grammar (precedence low to high)::

    expr    := term ('|' term)*            # also '||', 'or'
    term    := factor ('&' factor)*        # also '&&', 'and'
    factor  := '!' factor | 'not' factor | primary
    primary := 'true' | 'false'
             | 'Chk_evt' '(' NAME ')'
             | NAME                         # event or proposition
             | '(' expr ')'

Whether a bare ``NAME`` becomes an :class:`~repro.logic.expr.EventRef`
or a :class:`~repro.logic.expr.PropRef` is decided by the ``props``
argument: names listed there parse as propositions, everything else as
events.  This matches the CESC convention where guards are written
``p : e`` — the chart knows its proposition symbols.
"""

from __future__ import annotations

import re
from typing import FrozenSet, Iterable, List, NamedTuple, Optional

from repro.errors import ExprParseError
from repro.logic.expr import (
    FALSE,
    TRUE,
    And,
    EventRef,
    Expr,
    Not,
    Or,
    PropRef,
    ScoreboardCheck,
)

__all__ = ["parse_expr"]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<name>[A-Za-z_][A-Za-z0-9_.]*)
  | (?P<op>\|\||&&|[|&!()])
    """,
    re.VERBOSE,
)

_KEYWORD_TRUE = frozenset({"true", "TRUE", "True"})
_KEYWORD_FALSE = frozenset({"false", "FALSE", "False"})


class _Token(NamedTuple):
    kind: str  # 'name' | 'op' | 'end'
    text: str
    pos: int


def _tokenize(source: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise ExprParseError(
                f"unexpected character {source[pos]!r} at position {pos}"
            )
        if match.lastgroup != "ws":
            kind = "name" if match.lastgroup == "name" else "op"
            tokens.append(_Token(kind, match.group(), pos))
        pos = match.end()
    tokens.append(_Token("end", "", len(source)))
    return tokens


class _Parser:
    def __init__(self, tokens: List[_Token], props: FrozenSet[str]):
        self._tokens = tokens
        self._index = 0
        self._props = props

    def _peek(self) -> _Token:
        return self._tokens[self._index]

    def _advance(self) -> _Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect_op(self, text: str) -> None:
        token = self._advance()
        if token.kind != "op" or token.text != text:
            raise ExprParseError(
                f"expected {text!r} at position {token.pos}, got {token.text!r}"
            )

    def parse(self) -> Expr:
        expr = self._expr()
        token = self._peek()
        if token.kind != "end":
            raise ExprParseError(
                f"trailing input at position {token.pos}: {token.text!r}"
            )
        return expr

    def _expr(self) -> Expr:
        parts = [self._term()]
        while self._matches_op("|", "||") or self._matches_name("or"):
            self._advance()
            parts.append(self._term())
        return parts[0] if len(parts) == 1 else Or(tuple(parts))

    def _term(self) -> Expr:
        parts = [self._factor()]
        while self._matches_op("&", "&&") or self._matches_name("and"):
            self._advance()
            parts.append(self._factor())
        return parts[0] if len(parts) == 1 else And(tuple(parts))

    def _factor(self) -> Expr:
        if self._matches_op("!") or self._matches_name("not"):
            self._advance()
            return Not(self._factor())
        return self._primary()

    def _primary(self) -> Expr:
        token = self._advance()
        if token.kind == "op" and token.text == "(":
            inner = self._expr()
            self._expect_op(")")
            return inner
        if token.kind == "name":
            if token.text in _KEYWORD_TRUE:
                return TRUE
            if token.text in _KEYWORD_FALSE:
                return FALSE
            if token.text == "Chk_evt":
                self._expect_op("(")
                name_token = self._advance()
                if name_token.kind != "name":
                    raise ExprParseError(
                        f"Chk_evt needs an event name at position {name_token.pos}"
                    )
                self._expect_op(")")
                return ScoreboardCheck(name_token.text)
            if token.text in self._props:
                return PropRef(token.text)
            return EventRef(token.text)
        raise ExprParseError(
            f"unexpected token {token.text!r} at position {token.pos}"
        )

    def _matches_op(self, *texts: str) -> bool:
        token = self._peek()
        return token.kind == "op" and token.text in texts

    def _matches_name(self, text: str) -> bool:
        token = self._peek()
        return token.kind == "name" and token.text == text


def parse_expr(source: str, props: Optional[Iterable[str]] = None) -> Expr:
    """Parse ``source`` into an :class:`~repro.logic.expr.Expr`.

    ``props`` lists the symbol names to treat as propositions; all
    other bare names parse as events.

    >>> parse_expr("req & !ack | Chk_evt(req)")
    req & !ack | Chk_evt(req)
    """
    prop_set = frozenset(props or ())
    return _Parser(_tokenize(source), prop_set).parse()
