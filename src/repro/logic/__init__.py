"""Boolean logic substrate: expressions, valuations, SAT, minimisation.

This package provides the guard-expression machinery used throughout the
monitor synthesis pipeline:

* :mod:`repro.logic.expr` — the expression AST (events, propositions,
  scoreboard checks, the usual connectives) with evaluation,
  substitution, negation-normal-form and light simplification;
* :mod:`repro.logic.parser` — a textual expression parser;
* :mod:`repro.logic.valuation` — valuations (truth assignments over a
  finite alphabet) and alphabet enumeration;
* :mod:`repro.logic.sat` — a small DPLL SAT solver plus
  satisfiability / entailment / equivalence helpers used by the
  synthesis algorithm's compatibility checks;
* :mod:`repro.logic.qm` — Quine–McCluskey two-level minimisation, used
  to produce the compact figure-style guard expressions;
* :mod:`repro.logic.bdd` — reduced ordered BDDs for equivalence checks;
* :mod:`repro.logic.codec` — bitmask encoding of valuations over a
  fixed symbol ordering, the index space of the compiled monitor
  runtime's dense dispatch tables.
"""

from repro.logic.codec import AlphabetCodec
from repro.logic.expr import (
    FALSE,
    TRUE,
    And,
    Const,
    EventRef,
    Expr,
    Not,
    Or,
    PropRef,
    ScoreboardCheck,
    all_of,
    any_of,
    symbols_of,
)
from repro.logic.parser import parse_expr
from repro.logic.sat import (
    are_equivalent,
    entails,
    is_satisfiable,
    is_tautology,
    jointly_satisfiable,
)
from repro.logic.valuation import Valuation, enumerate_valuations

__all__ = [
    "AlphabetCodec",
    "And",
    "Const",
    "EventRef",
    "Expr",
    "FALSE",
    "Not",
    "Or",
    "PropRef",
    "ScoreboardCheck",
    "TRUE",
    "Valuation",
    "all_of",
    "any_of",
    "are_equivalent",
    "entails",
    "enumerate_valuations",
    "is_satisfiable",
    "is_tautology",
    "jointly_satisfiable",
    "parse_expr",
    "symbols_of",
]
