"""Quine–McCluskey two-level logic minimisation.

The monitors in the paper's figures label transitions with compact
guard expressions such as ``a = (MCmd_rd & Addr & SCmd_accept)`` and
``c = !(a | b)``.  The synthesis core, however, computes transitions
per *concrete valuation* (the paper's ``for each e in 2^Sigma`` loop).
To recover figure-style symbolic monitors we group valuations by target
state and minimise each group's characteristic function.  This module
provides that minimisation: classic Quine–McCluskey prime-implicant
generation followed by Petrick's method for exact minimum cover (the
input sizes here are small — guards rarely exceed ten symbols).

The API works on minterm index sets; :func:`minimize_expr` adapts it to
:class:`~repro.logic.expr.Expr` over an ordered symbol list.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.logic.expr import (
    FALSE,
    TRUE,
    And,
    EventRef,
    Expr,
    Not,
    Or,
    PropRef,
)

__all__ = ["Implicant", "prime_implicants", "minimum_cover", "minimize_expr"]


class Implicant:
    """A product term over ``n`` variables.

    ``bits`` holds the required value of each fixed variable position;
    ``mask`` marks the don't-care positions.  An implicant covers a
    minterm ``m`` iff ``m & ~mask == bits``.
    """

    __slots__ = ("bits", "mask", "width")

    def __init__(self, bits: int, mask: int, width: int):
        object.__setattr__(self, "bits", bits & ~mask)
        object.__setattr__(self, "mask", mask)
        object.__setattr__(self, "width", width)

    def __setattr__(self, name, value):
        raise AttributeError("Implicant is immutable")

    def covers(self, minterm: int) -> bool:
        """True iff this product term evaluates to 1 on ``minterm``."""
        return (minterm & ~self.mask) == self.bits

    def literal_count(self) -> int:
        """Number of literals in the product term."""
        return self.width - bin(self.mask).count("1")

    def try_merge(self, other: "Implicant") -> Optional["Implicant"]:
        """Combine two terms differing in exactly one fixed bit."""
        if self.mask != other.mask:
            return None
        diff = self.bits ^ other.bits
        if diff and diff & (diff - 1) == 0:  # exactly one bit differs
            return Implicant(self.bits & ~diff, self.mask | diff, self.width)
        return None

    def __eq__(self, other):
        return (
            isinstance(other, Implicant)
            and self.bits == other.bits
            and self.mask == other.mask
            and self.width == other.width
        )

    def __hash__(self):
        return hash((self.bits, self.mask, self.width))

    def __repr__(self):
        cells = []
        for position in range(self.width - 1, -1, -1):
            bit = 1 << position
            if self.mask & bit:
                cells.append("-")
            else:
                cells.append("1" if self.bits & bit else "0")
        return "".join(cells)


def prime_implicants(
    minterms: Iterable[int], dont_cares: Iterable[int], width: int
) -> List[Implicant]:
    """Compute all prime implicants of the function.

    ``minterms`` are the ON-set indices, ``dont_cares`` the DC-set; both
    are interpreted over ``width`` variables (bit ``width-1`` is the
    first variable).
    """
    current: Set[Implicant] = {
        Implicant(m, 0, width) for m in set(minterms) | set(dont_cares)
    }
    primes: Set[Implicant] = set()
    while current:
        merged: Set[Implicant] = set()
        used: Set[Implicant] = set()
        ordered = sorted(current, key=lambda t: (t.mask, t.bits))
        by_mask: Dict[int, List[Implicant]] = {}
        for term in ordered:
            by_mask.setdefault(term.mask, []).append(term)
        for terms in by_mask.values():
            for left, right in combinations(terms, 2):
                combined = left.try_merge(right)
                if combined is not None:
                    merged.add(combined)
                    used.add(left)
                    used.add(right)
        primes |= current - used
        current = merged
    return sorted(primes, key=lambda t: (t.mask, t.bits))


def minimum_cover(
    minterms: Sequence[int], primes: Sequence[Implicant]
) -> List[Implicant]:
    """Select a minimum-cardinality subset of ``primes`` covering all minterms.

    Essential primes are extracted first; the residue is solved exactly
    with Petrick's method (product-of-sums expansion), breaking ties by
    total literal count.
    """
    remaining = set(minterms)
    chosen: List[Implicant] = []
    chart: Dict[int, List[int]] = {
        m: [i for i, p in enumerate(primes) if p.covers(m)] for m in remaining
    }
    for m, coverers in chart.items():
        if not coverers:
            raise ValueError(f"minterm {m} not covered by any prime implicant")

    # Essential primes: sole coverer of some minterm.
    changed = True
    while changed and remaining:
        changed = False
        for m in list(remaining):
            coverers = [i for i in chart[m] if m in remaining]
            if len(chart[m]) == 1:
                essential = primes[chart[m][0]]
                if essential not in chosen:
                    chosen.append(essential)
                remaining -= {x for x in remaining if essential.covers(x)}
                changed = True
                break

    if not remaining:
        return chosen

    # Petrick's method on the residue.
    products: Set[FrozenSet[int]] = {frozenset()}
    for m in sorted(remaining):
        coverers = chart[m]
        expanded: Set[FrozenSet[int]] = set()
        for product in products:
            for index in coverers:
                expanded.add(product | {index})
        # Prune non-minimal products (supersets of others).
        minimal = {
            p
            for p in expanded
            if not any(q < p for q in expanded)
        }
        products = minimal
    best = min(
        products,
        key=lambda p: (len(p), sum(primes[i].literal_count() for i in p)),
    )
    for index in sorted(best):
        if primes[index] not in chosen:
            chosen.append(primes[index])
    return chosen


def _implicant_to_expr(term: Implicant, atoms: Sequence[Expr]) -> Expr:
    """Render a product term over the ordered ``atoms``."""
    literals: List[Expr] = []
    width = term.width
    for position, atom in enumerate(atoms):
        bit = 1 << (width - 1 - position)
        if term.mask & bit:
            continue
        literals.append(atom if term.bits & bit else Not(atom))
    if not literals:
        return TRUE
    if len(literals) == 1:
        return literals[0]
    return And(tuple(literals))


def minimize_expr(
    minterms: Iterable[int],
    atoms: Sequence[Expr],
    dont_cares: Iterable[int] = (),
) -> Expr:
    """Minimise the function given by ON-set ``minterms`` over ``atoms``.

    ``atoms`` is the ordered variable list; minterm bit ``len(atoms)-1-i``
    corresponds to ``atoms[i]``.  Returns a sum-of-products
    :class:`~repro.logic.expr.Expr`.
    """
    width = len(atoms)
    on_set = sorted(set(minterms))
    dc_set = sorted(set(dont_cares) - set(on_set))
    if not on_set:
        return FALSE
    if len(on_set) + len(dc_set) == 1 << width:
        return TRUE
    primes = prime_implicants(on_set, dc_set, width)
    cover = minimum_cover(on_set, primes)
    terms = [_implicant_to_expr(t, atoms) for t in cover]
    if len(terms) == 1:
        return terms[0]
    return Or(tuple(terms))
