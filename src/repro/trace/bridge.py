"""Trace -> VCD rendering: recorded runs as standard waveform dumps.

The inverse direction of :class:`~repro.trace.vcd_reader.VcdReader`:
any :class:`~repro.semantics.run.Trace` renders as a VCD document, one
1-bit wire per alphabet symbol.  Used to build protocol fixtures, to
hand monitor counterexamples to a waveform viewer, and by the
writer/reader round-trip property tests.

Two layouts:

* without a clock, tick ``i`` lands at time ``i`` — read back with
  ``VcdReader.valuations(period=1)``;
* with ``clock="clk"``, a toggling clock wire is added and tick ``i``
  lands at time ``2*i`` (clock high) / ``2*i + 1`` (clock low) — read
  back with ``VcdReader.valuations(clock="clk")``, the discipline real
  synchronous dumps use.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.errors import TraceError
from repro.semantics.run import Trace
from repro.sim.signal import Signal
from repro.sim.vcd import VcdWriter

__all__ = ["trace_to_vcd"]


def trace_to_vcd(
    trace: Trace,
    clock: Optional[str] = None,
    timescale: str = "1ns",
    scope: str = "top",
    alphabet: Optional[Iterable[str]] = None,
) -> str:
    """Render ``trace`` as VCD text (one 1-bit wire per symbol).

    ``alphabet`` overrides the emitted signal set (defaults to the
    trace's own alphabet, sorted).  ``clock`` adds a toggling clock
    wire of that name with one rising edge per tick.
    """
    symbols = sorted(alphabet if alphabet is not None else trace.alphabet)
    if clock is not None and clock in symbols:
        raise TraceError(
            f"clock name {clock!r} collides with a trace symbol"
        )
    writer = VcdWriter(timescale=timescale, time_scale_factor=1)
    signals = {symbol: Signal(symbol) for symbol in symbols}
    clock_signal = Signal(clock) if clock is not None else None
    if clock_signal is not None:
        writer.register(clock_signal, scope=scope)
    for symbol in symbols:
        writer.register(signals[symbol], scope=scope)

    def commit(signal: Signal, value: bool) -> None:
        signal.set(value)
        signal.commit()

    for tick, valuation in enumerate(trace):
        for symbol in symbols:
            commit(signals[symbol], valuation.is_true(symbol))
        if clock_signal is None:
            writer.sample(tick)
        else:
            commit(clock_signal, True)
            writer.sample(2 * tick)
            commit(clock_signal, False)
            writer.sample(2 * tick + 1)
    return writer.dump()
