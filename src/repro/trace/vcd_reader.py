"""Incremental VCD parsing: waveform dumps to valuation streams.

The counterpart of :class:`~repro.sim.vcd.VcdWriter` — but built for
dumps the repo did *not* write: standard four-value VCD as produced by
simulators and waveform tools.  Parsing is chunked and incremental: the
reader tokenises a bounded window of the file at a time and holds only
the current value of each declared signal, so a multi-gigabyte dump
streams through in constant memory.

Three sampling disciplines turn value changes into the per-clock
:class:`~repro.logic.valuation.Valuation` elements monitors consume:

* **event sampling** (default) — one valuation per timestamp present
  in the dump;
* **clock sampling** (``clock="clk"``) — one valuation per rising edge
  of a designated clock signal, the usual discipline for synchronous
  protocol traces;
* **periodic sampling** (``period=n``) — one valuation every ``n``
  time units (gaps hold their last value), which reconstructs exactly
  the tick grid :class:`~repro.sim.vcd.VcdWriter` sampled on.

A :class:`SignalBinding` maps VCD signal references to alphabet
symbols; unmapped signals are ignored, multi-bit signals read true
when non-zero, and ``x``/``z`` read false.

x/z sampling semantics
----------------------
Four-value VCD has no direct image in the two-valued synchronous
model, so unknown (``x``) and high-impedance (``z``) parse to
``None`` in :meth:`VcdReader.changes` — *not* to 0.  The distinction
matters in three places:

* a symbol whose driver is ``x``/``z`` reads **false** at sampling
  time (``bool(None)``), the conservative choice for event symbols
  ("no occurrence observed");
* a clock driven to ``x``/``z`` reads **low**: the unknown itself can
  never be a sampling edge (no tick fires on ``1 -> x``), while the
  next real ``1`` — whether from ``0`` or from ``x`` — is the rising
  edge that ticks the monitor;
* a dump whose only content so far is all-``x`` (``$dumpvars`` of an
  uninitialised design, or a ``$dumpoff`` blackout) has produced **no
  value** yet: event/periodic sampling starts at the first real value
  (``saw_value``), so uninitialised preambles do not emit all-false
  phantom ticks.
"""

from __future__ import annotations

import io
import os
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from repro.errors import TraceError
from repro.logic.valuation import Valuation
from repro.semantics.run import Trace

__all__ = ["SignalBinding", "VcdReader", "VcdSignal"]

#: Scalar change tokens.  ``x``/``z`` map to ``None`` — "no known
#: value" — which samples as false, never rises a clock, and does not
#: count as the dump's first real value (see module docstring).
_SCALAR_VALUES = {"0": 0, "1": 1, "x": None, "X": None, "z": None, "Z": None}

#: Directives whose body is skipped wholesale (up to ``$end``).
_SKIP_DIRECTIVES = {"$date", "$version", "$comment"}

#: Dump-section markers that bracket ordinary value-change tokens.
_DUMP_DIRECTIVES = {"$dumpvars", "$dumpall", "$dumpon", "$dumpoff"}


class VcdSignal:
    """One declared signal: identifier code, hierarchical name, width."""

    __slots__ = ("code", "name", "scope", "width", "kind")

    def __init__(self, code: str, name: str, scope: str, width: int,
                 kind: str = "wire"):
        self.code = code
        self.name = name
        self.scope = scope
        self.width = int(width)
        self.kind = kind

    @property
    def reference(self) -> str:
        """Fully scoped ``scope.name`` reference."""
        return f"{self.scope}.{self.name}" if self.scope else self.name

    def __repr__(self):
        return (
            f"VcdSignal({self.reference!r}, code={self.code!r}, "
            f"width={self.width})"
        )


class SignalBinding:
    """Maps VCD signal references to monitor alphabet symbols.

    ``mapping`` keys may be plain signal names (``"req"``) or scoped
    references (``"top.req"``); scoped keys win on collision.  The
    mapping *overlays* the identity binding: unmapped signals still
    bind to their own (unscoped) name, so renaming one net does not
    silently drop the others.  ``only`` restricts that identity
    fallback to a symbol subset — pass ``only=()`` to bind strictly
    the mapped signals and nothing else.
    """

    def __init__(self, mapping: Optional[Mapping[str, str]] = None,
                 only: Optional[Iterable[str]] = None):
        self._mapping = dict(mapping) if mapping else {}
        self._only = frozenset(only) if only is not None else None

    @classmethod
    def parse(cls, specs: Iterable[str]) -> "SignalBinding":
        """Build a binding from ``SIGNAL=SYMBOL`` strings (CLI form)."""
        mapping: Dict[str, str] = {}
        for spec in specs:
            signal, separator, symbol = spec.partition("=")
            if not separator or not signal or not symbol:
                raise TraceError(
                    f"bad binding {spec!r}: expected SIGNAL=SYMBOL"
                )
            mapping[signal] = symbol
        return cls(mapping)

    @property
    def explicit(self) -> bool:
        """Was an explicit signal->symbol mapping supplied?"""
        return bool(self._mapping)

    def maps(self, signal: VcdSignal) -> bool:
        """Is ``signal`` explicitly named in the mapping?"""
        return (signal.reference in self._mapping
                or signal.name in self._mapping)

    def fingerprint(self) -> str:
        """Canonical text form for cache keys: equal bindings (same
        mapping, same ``only`` restriction) fingerprint equally."""
        mapping = ",".join(
            f"{signal}={symbol}"
            for signal, symbol in sorted(self._mapping.items())
        )
        only = ("*" if self._only is None
                else ",".join(sorted(self._only)))
        return f"map[{mapping}]only[{only}]"

    def symbol_for(self, signal: VcdSignal) -> Optional[str]:
        """The alphabet symbol ``signal`` feeds, or ``None`` to ignore."""
        symbol = self._mapping.get(signal.reference)
        if symbol is None:
            symbol = self._mapping.get(signal.name)
        if symbol is not None:
            return symbol
        if self._only is not None and signal.name not in self._only:
            return None
        return signal.name

    def __repr__(self):
        if self._mapping:
            return f"SignalBinding({self._mapping!r})"
        return f"SignalBinding(identity, only={self._only})"


class _TokenStream:
    """Buffered whitespace tokenizer with batch access.

    Tokenizes one chunk of the stream at a time with a single
    ``str.split`` and exposes the result as an indexable buffer: the
    hot value-change parser walks ``_buffer``/``_pos`` directly (no
    generator resume per token), while header parsing and rare
    directives use the ordinary iterator protocol.  A token cut
    mid-chunk is carried over to the next refill.
    """

    __slots__ = ("_stream", "_chunk_size", "_buffer", "_pos", "_pending")

    def __init__(self, stream, chunk_size: int):
        self._stream = stream
        self._chunk_size = chunk_size
        self._buffer: List[str] = []
        self._pos = 0
        self._pending = ""

    def _refill(self) -> bool:
        """Load the next non-empty token batch; False at end of input."""
        while True:
            chunk = self._stream.read(self._chunk_size)
            if not chunk:
                if self._pending:
                    self._buffer = [self._pending]
                    self._pending = ""
                    self._pos = 0
                    return True
                return False
            parts = (self._pending + chunk).split()
            # The final fragment may be a token cut mid-chunk; keep it
            # back unless the chunk ended on whitespace.
            if parts and not chunk[-1].isspace():
                self._pending = parts.pop()
            else:
                self._pending = ""
            if parts:
                self._buffer = parts
                self._pos = 0
                return True

    def next_token(self) -> Optional[str]:
        if self._pos >= len(self._buffer) and not self._refill():
            return None
        token = self._buffer[self._pos]
        self._pos += 1
        return token

    def __iter__(self) -> "_TokenStream":
        return self

    def __next__(self) -> str:
        token = self.next_token()
        if token is None:
            raise StopIteration
        return token


class VcdReader:
    """Chunked, incremental reader of VCD waveform dumps.

    ``source`` is a filesystem path or an open text stream; text
    passed directly is supported via :meth:`from_text`.  The header is
    parsed eagerly (so :attr:`signals` is available immediately); value
    changes stream lazily through :meth:`changes` and the sampling
    iterators, holding only one chunk and one value per signal in
    memory.
    """

    def __init__(self, source: Union[str, "os.PathLike[str]", io.TextIOBase],
                 binding: Optional[SignalBinding] = None,
                 chunk_size: int = 1 << 16):
        if chunk_size <= 0:
            raise TraceError("chunk_size must be positive")
        self._owns_stream = False
        if hasattr(source, "read"):
            self._stream = source
        else:
            self._stream = open(os.fspath(source), "r")
            self._owns_stream = True
        self._chunk_size = chunk_size
        self.binding = binding if binding is not None else SignalBinding()
        self.timescale: Optional[str] = None
        self.signals: List[VcdSignal] = []
        self._by_code: Dict[str, VcdSignal] = {}
        self._tokens = _TokenStream(self._stream, chunk_size)
        try:
            self._parse_header()
        except Exception:
            # The context manager is never entered when __init__
            # raises, so an owned handle must be released here.
            self.close()
            raise
        self._consumed = False

    @classmethod
    def from_text(cls, text: str, binding: Optional[SignalBinding] = None,
                  chunk_size: int = 1 << 16) -> "VcdReader":
        """Read a VCD document already held as a string."""
        return cls(io.StringIO(text), binding=binding, chunk_size=chunk_size)

    def close(self) -> None:
        if self._owns_stream:
            self._stream.close()

    def __enter__(self) -> "VcdReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- tokenization ----------------------------------------------------
    def _directive_body(self, name: str) -> List[str]:
        body: List[str] = []
        for token in self._tokens:
            if token == "$end":
                return body
            body.append(token)
        raise TraceError(f"unterminated {name} directive (missing $end)")

    # -- header ----------------------------------------------------------
    def _parse_header(self) -> None:
        scopes: List[str] = []
        for token in self._tokens:
            if token == "$enddefinitions":
                self._directive_body("$enddefinitions")
                return
            if token == "$timescale":
                self.timescale = " ".join(self._directive_body("$timescale"))
            elif token == "$scope":
                body = self._directive_body("$scope")
                if len(body) < 2:
                    raise TraceError(f"malformed $scope: {body}")
                scopes.append(body[1])
            elif token == "$upscope":
                self._directive_body("$upscope")
                if scopes:
                    scopes.pop()
            elif token == "$var":
                body = self._directive_body("$var")
                if len(body) < 4:
                    raise TraceError(f"malformed $var: {body}")
                kind, width, code, name = body[0], body[1], body[2], body[3]
                try:
                    parsed_width = int(width)
                except ValueError:
                    raise TraceError(f"bad $var width {width!r}")
                signal = VcdSignal(
                    code, name, ".".join(scopes), parsed_width, kind
                )
                self.signals.append(signal)
                self._by_code[code] = signal
            elif token in _SKIP_DIRECTIVES:
                self._directive_body(token)
            elif token.startswith("$"):
                # Unknown directive: skip its body defensively.
                self._directive_body(token)
            else:
                raise TraceError(
                    f"unexpected token {token!r} before $enddefinitions"
                )
        raise TraceError("VCD header ended without $enddefinitions")

    # -- value changes ---------------------------------------------------
    def changes(self) -> Iterator[Tuple[int, str, Optional[int]]]:
        """Yield ``(time, identifier_code, value)`` change records.

        ``value`` is an int (vectors parse as binary), ``0``/``1`` for
        scalars, or ``None`` for ``x``/``z``.  Records inside
        ``$dumpvars``-style sections are yielded like ordinary changes
        (their surrounding markers are skipped).

        A reader streams its dump exactly once — a second consumption
        would silently yield nothing (the underlying stream is spent),
        so it raises instead; construct a fresh ``VcdReader`` to
        re-read.
        """
        batches = self._change_batches()

        def flattened() -> Iterator[Tuple[int, str, Optional[int]]]:
            for batch in batches:
                yield from batch

        return flattened()

    def _change_batches(self) -> Iterator[List[Tuple[int, str, Optional[int]]]]:
        """One list of change records per tokenizer refill (see
        :meth:`_iter_change_batches`); single-consumption guarded."""
        if self._consumed:
            raise TraceError(
                "VCD value changes already consumed; open a new VcdReader "
                "to re-read the dump"
            )
        self._consumed = True
        return self._iter_change_batches()

    def _change_directive(self, token: str) -> None:
        """Rare-path handling of a directive in the change stream."""
        if token == "$dumpoff":
            # A blackout section: every signal is dumped as x/z purely
            # to mark the gap.  Applying those would read all symbols
            # false and register a phantom clock edge at $dumpon, so
            # the section is skipped wholesale — values hold until
            # $dumpon re-dumps them.
            for skipped in self._tokens:
                if skipped == "$end":
                    return
            raise TraceError("unterminated $dumpoff section (missing $end)")
        if token in _DUMP_DIRECTIVES or token == "$end":
            return
        if token[0] == "$":
            self._directive_body(token)
            return
        raise TraceError(f"unexpected value-change token {token!r}")

    def _iter_change_batches(
        self,
    ) -> Iterator[List[Tuple[int, str, Optional[int]]]]:
        """Value-change records, one list per tokenizer refill.

        The hot loop walks the token buffer by index — ``str.split``
        already tokenized the whole chunk — and dispatches on the first
        character with the most frequent kinds (scalar changes, then
        timestamps) tested first.  Only directives and a value token
        cut at a buffer boundary leave the fast loop.  Consumers get
        whole batches, so the per-record generator resume of a naive
        token pipeline disappears from both sides.
        """
        time = 0
        miss = object()
        scalar_get = _SCALAR_VALUES.get
        tokens = self._tokens
        while True:
            if tokens._pos >= len(tokens._buffer) and not tokens._refill():
                return
            buffer = tokens._buffer
            index = tokens._pos
            n = len(buffer)
            out: List[Tuple[int, str, Optional[int]]] = []
            append = out.append
            while index < n:
                token = buffer[index]
                lead = token[0]
                value = scalar_get(lead, miss)
                if value is not miss:
                    index += 1
                    code = token[1:]
                    if not code:
                        raise TraceError(
                            f"scalar change {token!r} lacks an id"
                        )
                    append((time, code, value))
                elif lead == "#":
                    index += 1
                    try:
                        time = int(token[1:])
                    except ValueError:
                        raise TraceError(f"bad timestamp token {token!r}")
                    append((time, "", None))  # timestamp marker
                elif lead in "bBrR":
                    index += 1
                    if index < n:
                        code = buffer[index]
                        index += 1
                    else:
                        # Value token cut at the buffer boundary: pull
                        # its identifier through the stream (refills).
                        tokens._pos = index
                        code = tokens.next_token()
                        buffer = tokens._buffer
                        index = tokens._pos
                        n = len(buffer)
                    if lead in "bB":
                        if code is None:
                            raise TraceError(
                                f"vector change {token!r} lacks an id"
                            )
                        bits = token[1:]
                        if any(c in "xXzZ" for c in bits):
                            append((time, code, None))
                        else:
                            try:
                                append((time, code, int(bits, 2)))
                            except ValueError:
                                raise TraceError(
                                    f"bad vector value {token!r}"
                                )
                    else:
                        if code is None:
                            raise TraceError(
                                f"real change {token!r} lacks an id"
                            )
                        try:
                            append((time, code, int(float(token[1:]) != 0.0)))
                        except ValueError:
                            raise TraceError(f"bad real value {token!r}")
                else:
                    # Directive (or junk): hand the stream back at this
                    # position and let the slow path consume it.
                    tokens._pos = index + 1
                    self._change_directive(token)
                    buffer = tokens._buffer
                    index = tokens._pos
                    n = len(buffer)
            tokens._pos = index
            if out:
                yield out

    # -- sampling --------------------------------------------------------
    def _bound_symbols(self) -> Dict[str, Tuple[str, ...]]:
        """``identifier code -> symbols`` for every bound signal.

        One code may carry several symbols: VCD aliases identical nets
        across scopes by declaring multiple ``$var`` entries with a
        shared identifier, and a change record drives all of them.
        """
        bound: Dict[str, Tuple[str, ...]] = {}
        for signal in self.signals:
            symbol = self.binding.symbol_for(signal)
            if symbol is not None:
                existing = bound.get(signal.code, ())
                if symbol not in existing:
                    bound[signal.code] = existing + (symbol,)
        return bound

    def alphabet(self, clock: Optional[str] = None) -> frozenset:
        """The symbols this reader's binding exposes.

        Pass the same ``clock`` as the sampling call to get the
        alphabet the emitted valuations will carry (the sampling clock
        is infrastructure, excluded unless explicitly bound).
        """
        bound, _ = self._sampling_bound(clock)
        return frozenset(s for symbols in bound.values() for s in symbols)

    def _sampling_bound(self, clock: Optional[str]):
        """``(code -> symbol, clock codes)`` for one sampling setup."""
        bound = self._bound_symbols()
        clock_codes = frozenset(
            s.code for s in self.signals
            if clock is not None and (s.name == clock or s.reference == clock)
        )
        if clock is not None and not clock_codes:
            known = sorted(s.reference for s in self.signals)
            raise TraceError(
                f"clock signal {clock!r} not declared in dump "
                f"(signals: {known})"
            )
        if len(clock_codes) > 1:
            # Distinct nets (different identifier codes) sharing the
            # unscoped name: unioning their edges would corrupt the
            # tick grid, so demand a scoped reference.  A single code
            # declared in several scopes is one net — fine.
            matches = sorted(
                s.reference for s in self.signals
                if s.name == clock or s.reference == clock
            )
            raise TraceError(
                f"clock name {clock!r} is ambiguous in this dump "
                f"({matches}); use a scoped reference"
            )
        infrastructure = frozenset(
            s.name for s in self.signals
            if s.code in clock_codes and not self.binding.maps(s)
        )
        if infrastructure:
            # The sampling clock is infrastructure, not part of the
            # observed alphabet — unless a mapping names it on purpose.
            # Only the clock's own symbols are dropped: an identifier
            # code aliasing the clock with a bound data net keeps the
            # data symbol.
            trimmed: Dict[str, Tuple[str, ...]] = {}
            for code, symbols in bound.items():
                if code in clock_codes:
                    symbols = tuple(
                        s for s in symbols if s not in infrastructure
                    )
                if symbols:
                    trimmed[code] = symbols
            bound = trimmed
        return bound, clock_codes

    def valuations(
        self,
        clock: Optional[str] = None,
        period: Optional[int] = None,
        offset: int = 0,
        until: Optional[int] = None,
    ) -> Iterator[Valuation]:
        """Stream one :class:`Valuation` per clock tick.

        Exactly one discipline applies: ``clock`` names a signal whose
        rising edges define the ticks (the signal itself is excluded
        from the emitted symbols unless explicitly bound); ``period``
        samples every ``period`` time units starting at ``offset`` up
        to ``until`` (default: the dump's last timestamp); with
        neither, every timestamp in the dump is a tick.

        ``offset``/``until`` (time units, inclusive) window every
        discipline: ticks before ``offset`` are skipped and reading
        stops early once the dump passes ``until``.

        Ticks sample values *after* the changes at their instant — the
        synchronous convention that a change dumped at time ``t`` is
        what the monitor reads at tick ``t``.
        """
        if clock is not None and period is not None:
            raise TraceError("choose clock or period sampling, not both")
        if period is not None and period <= 0:
            raise TraceError("sampling period must be positive")
        bound, clock_codes = self._sampling_bound(clock)
        alphabet = frozenset(s for symbols in bound.values() for s in symbols)

        true_now: set = set()
        counts: Dict[str, int] = {}  # symbol -> number of high drivers
        clock_high = False
        clock_rose = False
        block_time = 0
        next_sample = offset
        # A dump whose only content is an all-x $dumpvars block has no
        # sampled instant at all (that is how an empty trace renders);
        # event/periodic ticks only start once a real value appears.
        saw_value = False

        # Snapshots are cached per symbol-state version: idle stretches
        # (periodic sampling across gaps, clock ticks with no data
        # activity) then reuse one immutable Valuation instead of
        # rebuilding an identical one per tick.
        state_version = 0
        snap_version = -1
        snap_value: Optional[Valuation] = None

        def snapshot() -> Valuation:
            nonlocal snap_version, snap_value
            if snap_version != state_version:
                snap_value = Valuation(frozenset(true_now), alphabet)
                snap_version = state_version
            return snap_value

        def in_window(time: int) -> bool:
            return time >= offset and (until is None or time <= until)

        # Per-code high/low tracking; a symbol is true when any of its
        # driving codes is high (multiple signals may bind one symbol).
        code_high: Dict[str, bool] = {}

        def flush_periodic(limit: int) -> Iterator[Valuation]:
            """Emit samples at every point strictly before ``limit``."""
            nonlocal next_sample
            while next_sample < limit and (until is None or next_sample <= until):
                yield snapshot()
                next_sample += period

        pending_block = False
        bound_get = bound.get
        code_high_get = code_high.get
        counts_get = counts.get
        # The change stream arrives in tokenizer-refill batches; the
        # per-change work below is a plain loop over those lists, with
        # the set-code bookkeeping inlined (it runs once per change
        # record — the dominant count in any dump).
        for changes in self._change_batches():
            for time, code, value in changes:
                if code:
                    # Changes before any timestamp (e.g. a bare
                    # $dumpvars section) belong to an implicit instant
                    # at time 0.
                    pending_block = True
                    if value is not None:
                        saw_value = True
                        high = value != 0
                    else:
                        high = False
                    if code in clock_codes:
                        if high and not clock_high:
                            clock_rose = True
                        clock_high = high
                    symbols = bound_get(code)
                    if not symbols or code_high_get(code, False) == high:
                        continue
                    code_high[code] = high
                    state_version += 1
                    for symbol in symbols:
                        if high:
                            counts[symbol] = counts_get(symbol, 0) + 1
                            true_now.add(symbol)
                        else:
                            remaining = counts_get(symbol, 0) - 1
                            counts[symbol] = remaining
                            if remaining <= 0:
                                true_now.discard(symbol)
                    continue
                # Timestamp marker.
                if pending_block and time == block_time:
                    # Same instant continues — e.g. an initial-value
                    # section written *before* the first '#0' marker
                    # belongs to the '#0' block, not to a tick of its
                    # own.
                    continue
                if pending_block:
                    # close the previous instant
                    if clock is not None:
                        if clock_rose and in_window(block_time):
                            yield snapshot()
                        clock_rose = False
                    elif period is None and saw_value and in_window(block_time):
                        yield snapshot()
                if period is not None:
                    if saw_value:
                        yield from flush_periodic(time)
                    else:
                        # No value has appeared yet, so grid points up
                        # to here would be phantom ticks back-filled
                        # with future values; skip them, keeping the
                        # grid's offset phase.
                        while next_sample < time:
                            next_sample += period
                if until is not None and time > until:
                    # The rest of the dump is outside the window —
                    # stop reading (this is the early exit that makes
                    # until= a bounded-work window on huge dumps).
                    return
                block_time = time
                pending_block = True
        # Close the final instant.
        if pending_block:
            if clock is not None:
                if clock_rose and in_window(block_time):
                    yield snapshot()
            elif period is None and saw_value and in_window(block_time):
                yield snapshot()
            if period is not None and saw_value:
                stop = block_time if until is None else until
                while next_sample <= stop:
                    yield snapshot()
                    next_sample += period

    def trace(self, clock: Optional[str] = None, period: Optional[int] = None,
              offset: int = 0, until: Optional[int] = None) -> Trace:
        """Materialise the sampled valuation stream as a :class:`Trace`.

        Convenience for small dumps and tests; for multi-GB dumps feed
        :meth:`valuations` straight into a
        :class:`~repro.trace.streaming.StreamingChecker` instead.
        """
        alphabet = self.alphabet(clock=clock)
        valuations = list(
            self.valuations(clock=clock, period=period, offset=offset,
                            until=until)
        )
        return Trace(valuations, alphabet)
