"""Columnar trace store + chunk-parallel VCD front-end.

The vector kernel (:mod:`repro.runtime.vector`) checks 18-28M ticks/s,
but :class:`~repro.trace.vcd_reader.VcdReader` parses dumps at ~230k
ticks/s — on real-waveform workloads *parsing*, not checking, is the
wall.  This module closes that gap twice over:

* **``.rtrc``** — a versioned binary columnar trace format storing
  per-trace symbol-mask arrays pre-encoded against an
  :class:`~repro.logic.codec.AlphabetCodec` (the exact int layout the
  vector kernel gathers over), plus trace lengths, the codec
  fingerprint, and sampling metadata.  Loading is NumPy-optional:
  ``numpy.frombuffer`` over an ``mmap`` when NumPy is present (zero
  copies into :func:`~repro.runtime.vector.run_many_vector_encoded`),
  an ``array('i')`` otherwise.

* **chunk-parallel VCD conversion** — the ``$enddefinitions``-to-EOF
  change stream is split at timestamp boundaries (``\\n#``), each chunk
  is parsed by a worker of the persistent :mod:`repro.trace.shard`
  pools into compact per-instant *delta records* (changed-code bits,
  clock-edge flags), and a single sequential replay in the parent
  applies the sampling discipline.  All of the tricky
  :meth:`VcdReader.valuations <repro.trace.vcd_reader.VcdReader.valuations>`
  semantics — same-instant block merging, ``$dumpvars`` preambles,
  x/z-as-``None``, ``saw_value`` gating, periodic grid phase,
  offset/until windows — live in that one replay loop, so the output
  is byte-identical to the sequential reader whatever the seams, and a
  seam-split instant merges naturally under the same-time rule.  Any
  structural surprise in a chunk falls back to a single-chunk parse.

* **content-addressed corpus cache** — :func:`ingest_vcd` keys an
  on-disk :class:`~repro.cache.CorpusCache` entry by the dump's
  content digest, the signal binding, the codec fingerprint, and the
  sampling parameters, so a regression corpus is parsed once and warm
  re-checks read pre-encoded mask arrays straight off disk.

``.rtrc`` layout (version 1, all integers little-endian)::

    bytes 0..3    magic b"RTRC"
    bytes 4..7    format version (uint32)
    bytes 8..11   JSON header length in bytes (uint32)
    ...           UTF-8 JSON header: symbols, fingerprint, lengths,
                  payload crc32, free-form "meta" (clock, period,
                  source digest, ...)
    ...           zero padding to a 64-byte boundary
    payload       sum(lengths) int32 mask values, trace-major

A file is rejected (and a cache entry treated as a miss) when the
magic or version mismatches, the size disagrees with the header, or
the payload crc32 does not verify.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import struct
import sys
import zlib
from array import array
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.cache import CorpusCache
from repro.errors import TraceError
from repro.logic.codec import AlphabetCodec
from repro.semantics.run import Trace

__all__ = [
    "RTRC_VERSION",
    "ColumnarTraceSet",
    "codec_fingerprint",
    "corpus_key",
    "ingest_vcd",
    "masks_from_vcd",
    "masks_from_vcd_text",
]

try:  # pragma: no cover - exercised via the fallback differential run
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None
if os.environ.get("REPRO_NO_NUMPY"):  # test hook: force the fallback
    _np = None

RTRC_MAGIC = b"RTRC"
RTRC_VERSION = 1

#: Payload alignment: mask arrays start on this boundary so an mmap'd
#: int32 view is aligned whatever the JSON header length.
_ALIGN = 64

#: Change streams smaller than this parse in-process — pool dispatch
#: and result pickling would cost more than the parse itself.
_MIN_PARALLEL_BYTES = 1 << 16

_SCALAR_VALUES = {"0": 0, "1": 1, "x": None, "X": None, "z": None, "Z": None}
_DUMP_DIRECTIVES = {"$dumpvars", "$dumpall", "$dumpon", "$dumpoff"}

# Per-instant clock/validity flags carried by worker delta records.
_F_ROSE = 1          # clock rose within the instant (previous level known low)
_F_ROSE_IF_LOW = 2   # clock went high but the incoming level is chunk-unknown
_F_LEVEL_LOW = 4     # clock level at end of instant: low
_F_LEVEL_HIGH = 8    # clock level at end of instant: high
_F_SAW = 16          # some change carried a real (non-x/z) value


def codec_fingerprint(codec: Union[AlphabetCodec, Iterable[str]]) -> str:
    """Stable hex digest of a codec's symbol ordering.

    Two codecs with the same fingerprint produce identical mask
    streams for any trace, so the fingerprint is what a ``.rtrc`` file
    records and what cache keys embed.
    """
    symbols = (codec.symbols if isinstance(codec, AlphabetCodec)
               else tuple(sorted(set(codec))))
    payload = "\x00".join(symbols).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def _masks_to_le_bytes(masks) -> bytes:
    """Little-endian int32 bytes of one mask sequence."""
    if _np is not None and isinstance(masks, _np.ndarray):
        return masks.astype("<i4", copy=False).tobytes()
    if isinstance(masks, array) and masks.typecode == "i" and \
            masks.itemsize == 4:
        if sys.byteorder == "little":
            return masks.tobytes()
        swapped = array("i", masks)
        swapped.byteswap()
        return swapped.tobytes()
    return struct.pack(f"<{len(masks)}i", *masks)


class ColumnarTraceSet:
    """An ordered set of pre-encoded mask streams over one codec.

    ``masks(i)`` / ``mask_arrays()`` return views into one flat buffer
    (a NumPy int32 array when NumPy is present, ``array('i')``
    otherwise) in exactly the layout
    :func:`~repro.runtime.vector.run_many_vector_encoded` consumes.
    Treat them as read-only — loaded sets may be memory-mapped.
    """

    __slots__ = ("symbols", "lengths", "meta", "_flat", "_offsets",
                 "_mmap", "_crc")

    def __init__(self, symbols: Sequence[str], lengths: Sequence[int],
                 flat, meta: Optional[dict] = None, _mmap=None,
                 payload_crc: Optional[int] = None):
        self.symbols: Tuple[str, ...] = tuple(symbols)
        self.lengths: Tuple[int, ...] = tuple(int(n) for n in lengths)
        if any(n < 0 for n in self.lengths):
            raise TraceError("negative trace length in columnar set")
        self.meta = dict(meta) if meta else {}
        offsets = [0]
        for length in self.lengths:
            offsets.append(offsets[-1] + length)
        self._offsets = offsets
        if len(flat) != offsets[-1]:
            raise TraceError(
                f"columnar payload holds {len(flat)} masks; lengths "
                f"sum to {offsets[-1]}"
            )
        self._flat = flat
        self._mmap = _mmap
        self._crc = payload_crc

    # -- construction ----------------------------------------------------
    @classmethod
    def from_mask_arrays(cls, mask_arrays: Sequence[Sequence[int]],
                         symbols: Sequence[str],
                         meta: Optional[dict] = None) -> "ColumnarTraceSet":
        lengths = [len(masks) for masks in mask_arrays]
        if _np is not None:
            flat = _np.empty(sum(lengths), dtype=_np.int32)
            cursor = 0
            for masks in mask_arrays:
                flat[cursor:cursor + len(masks)] = _np.asarray(
                    masks, dtype=_np.int32
                )
                cursor += len(masks)
        else:
            flat = array("i")
            for masks in mask_arrays:
                flat.extend(masks)
        return cls(symbols, lengths, flat, meta=meta)

    @classmethod
    def from_traces(cls, traces: Sequence[Trace],
                    alphabet: Optional[Iterable[str]] = None,
                    meta: Optional[dict] = None) -> "ColumnarTraceSet":
        """Encode whole traces; ``alphabet`` defaults to their union."""
        if alphabet is None:
            symbols: set = set()
            for trace in traces:
                symbols |= set(trace.alphabet)
            alphabet = symbols
        codec = AlphabetCodec(alphabet)
        return cls.from_mask_arrays(
            codec.encode_many(list(traces)), codec.symbols, meta=meta
        )

    # -- observers -------------------------------------------------------
    @property
    def fingerprint(self) -> str:
        return codec_fingerprint(self.symbols)

    @property
    def n_traces(self) -> int:
        return len(self.lengths)

    @property
    def total_ticks(self) -> int:
        return self._offsets[-1]

    def codec(self) -> AlphabetCodec:
        return AlphabetCodec(self.symbols)

    def masks(self, index: int):
        """Trace ``index``'s mask stream (a zero-copy view; read-only)."""
        start, end = self._offsets[index], self._offsets[index + 1]
        return self._flat[start:end]

    def mask_arrays(self) -> list:
        return [self.masks(index) for index in range(self.n_traces)]

    def trace(self, index: int) -> Trace:
        """Decode one stream back into a :class:`Trace` (tests, tools)."""
        codec = self.codec()
        return Trace([codec.decode(int(mask)) for mask in self.masks(index)],
                     self.symbols)

    def __len__(self) -> int:
        return self.n_traces

    def __repr__(self):
        return (
            f"ColumnarTraceSet({self.n_traces} traces, "
            f"{self.total_ticks} ticks, "
            f"alphabet {list(self.symbols)})"
        )

    # -- serialisation ---------------------------------------------------
    def to_bytes(self) -> bytes:
        payload = _masks_to_le_bytes(self._flat)
        header = json.dumps({
            "symbols": list(self.symbols),
            "fingerprint": self.fingerprint,
            "lengths": list(self.lengths),
            "payload_crc32": zlib.crc32(payload),
            "meta": self.meta,
        }, sort_keys=True).encode("utf-8")
        prefix = RTRC_MAGIC + struct.pack("<II", RTRC_VERSION, len(header))
        pad = (-(len(prefix) + len(header))) % _ALIGN
        return prefix + header + b"\x00" * pad + payload

    def save(self, path: Union[str, "os.PathLike[str]"]) -> str:
        """Write atomically (tmp file + rename); returns the path."""
        path = os.fspath(path)
        data = self.to_bytes()
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "wb") as stream:
            stream.write(data)
        os.replace(tmp, path)
        return path

    @classmethod
    def from_bytes(cls, data, verify: bool = True,
                   _mmap=None) -> "ColumnarTraceSet":
        if len(data) < 12 or bytes(data[:4]) != RTRC_MAGIC:
            raise TraceError("not a columnar trace (.rtrc) payload")
        version, header_len = struct.unpack("<II", data[4:12])
        if version != RTRC_VERSION:
            raise TraceError(
                f"columnar trace format version {version} unsupported "
                f"(this build reads version {RTRC_VERSION})"
            )
        if len(data) < 12 + header_len:
            raise TraceError("truncated columnar trace header")
        try:
            header = json.loads(bytes(data[12:12 + header_len]))
            symbols = header["symbols"]
            lengths = header["lengths"]
            crc = header["payload_crc32"]
            meta = header.get("meta", {})
        except (ValueError, KeyError, TypeError):
            raise TraceError("corrupt columnar trace header")
        offset = 12 + header_len
        offset += (-offset) % _ALIGN
        total = sum(lengths)
        if len(data) != offset + 4 * total:
            raise TraceError(
                f"columnar payload is {len(data) - offset} bytes; header "
                f"promises {4 * total}"
            )
        payload = memoryview(data)[offset:]
        if verify and zlib.crc32(payload) != crc:
            raise TraceError("columnar payload failed its crc32 check")
        if _np is not None:
            flat = _np.frombuffer(payload, dtype="<i4")
        else:
            flat = array("i")
            flat.frombytes(payload)
            if sys.byteorder == "big":  # pragma: no cover - LE hosts
                flat.byteswap()
        return cls(symbols, lengths, flat, meta=meta, _mmap=_mmap,
                   payload_crc=crc)

    def verify_payload(self) -> "ColumnarTraceSet":
        """Run (or re-run) the payload crc32 check; returns ``self``.

        Lazy loads defer this check so no page of the mapping is
        touched before a kernel reads it — call this to pay for the
        full scan explicitly.  Raises :class:`TraceError` on mismatch,
        like the eager path would have at load time.
        """
        if self._crc is None:
            return self
        if _np is not None and isinstance(self._flat, _np.ndarray):
            actual = zlib.crc32(self._flat.data)
        else:
            actual = zlib.crc32(_masks_to_le_bytes(self._flat))
        if actual != self._crc:
            raise TraceError("columnar payload failed its crc32 check")
        return self

    @classmethod
    def load(cls, path: Union[str, "os.PathLike[str]"],
             verify: bool = True, lazy: bool = False) -> "ColumnarTraceSet":
        """Read a ``.rtrc`` file; memory-mapped under NumPy.

        ``lazy=True`` keeps mask views as NumPy ``frombuffer`` windows
        over the mapping and *defers* the whole-payload crc32 — the
        eager check faults in every page, which defeats the mapping
        for corpora larger than RAM.  Structural validation (magic,
        version, header shape, payload size) still runs up front, and
        every failure mode stays a :class:`TraceError`;
        :meth:`verify_payload` runs the deferred check on demand.
        Without NumPy, or when the file cannot be mapped, the eager
        read-and-verify path is kept regardless of ``lazy``.
        """
        with open(os.fspath(path), "rb") as stream:
            if _np is not None:
                try:
                    mapped = mmap.mmap(stream.fileno(), 0,
                                       access=mmap.ACCESS_READ)
                except (ValueError, OSError):
                    mapped = None  # empty or unmappable file
                if mapped is not None:
                    return cls.from_bytes(mapped,
                                          verify=verify and not lazy,
                                          _mmap=mapped)
            return cls.from_bytes(stream.read(), verify=verify)


# -- chunk-parallel VCD conversion ------------------------------------------
def _scalar_actions(all_codes: Iterable[str], code_bits: Dict[str, int],
                    clock_codes: frozenset) -> Dict[str, tuple]:
    """Precompiled scalar-change dispatch: token -> ``(hi, lo, saw, clk)``.

    Scalar changes are drawn from a small finite vocabulary — a value
    character (``01xXzZ``) glued to one of the declared identifier
    codes — so the whole per-token decision (slice off the code, look
    up its bits, classify the value, test clock membership) collapses
    into a single dict probe computed once per conversion.  ``clk`` is
    0 for non-clock codes, 1 for a high clock edge, 2 for low/unknown.
    """
    actions: Dict[str, tuple] = {}
    for code in all_codes:
        bits = code_bits.get(code, 0)
        if code in clock_codes:
            high_clk, low_clk = 1, 2
        else:
            high_clk = low_clk = 0
        actions["1" + code] = (bits, 0, _F_SAW, high_clk)
        actions["0" + code] = (0, bits, _F_SAW, low_clk)
        for unknown in ("x", "X", "z", "Z"):
            # x/z read as value None: no saw_value, symbol goes low.
            actions[unknown + code] = (0, bits, 0, low_clk)
    return actions


def _parse_chunk(text: str, actions: Dict[str, tuple],
                 code_bits: Dict[str, int],
                 clock_codes: frozenset,
                 drop_quiet: bool = False) -> tuple:
    """One chunk of the change stream -> per-instant delta records.

    Context-free by design: the worker knows nothing about values set
    before its chunk, so each record carries only what changed —
    ``set``/``clear`` bit deltas over the (code or symbol) bitspace,
    and clock flags whose "did it rise?" question may be deferred to
    the replay (``_F_ROSE_IF_LOW``) when the incoming level is
    unknown.  Returns ``(times, sets, clears, flags)`` arrays, one
    entry per instant, cheap to pickle back from a worker.

    ``drop_quiet`` (clock sampling only) elides instants that carry no
    bit deltas and no clock rise — typically every falling clock edge,
    half of a synchronous dump.  The replay never samples on them and
    ``saw_value`` is not consulted under clock sampling; the one thing
    they feed, the level seen by the *next* chunk's deferred-rise
    resolution, is preserved by a trailing zero-delta record whenever
    the chunk's final level differs from the last level shipped.
    """
    tokens = text.split()
    times = array("q")
    sets = array("q")
    clears = array("q")
    flags = bytearray()
    times_append = times.append
    sets_append = sets.append
    clears_append = clears.append
    flags_append = flags.append

    cur_time = 0
    pending = False
    hi = 0
    lo = 0
    flag = 0
    quiet_level = 0    # latest level bits seen (shipped or elided)
    shipped_level = 0  # latest level bits actually shipped
    clock_level: Optional[bool] = None  # unknown at chunk entry
    scalar_get = _SCALAR_VALUES.get
    actions_get = actions.get
    bits_get = code_bits.get
    has_clock = bool(clock_codes)
    # Hot-loop locals: global flag constants cost a dict probe per use.
    f_rose = _F_ROSE
    f_rose_if_low = _F_ROSE_IF_LOW
    f_level_low = _F_LEVEL_LOW
    f_level_high = _F_LEVEL_HIGH
    rose_bits = f_rose | f_rose_if_low
    level_bits = f_level_low | f_level_high
    miss = object()
    stream = iter(tokens)
    for token in stream:
        act = actions_get(token)
        if act is not None:
            # Scalar change of a declared code: the precompiled path.
            token_hi, token_lo, saw, clk = act
            pending = True
            if token_hi or token_lo:
                hi = (hi | token_hi) & ~token_lo
                lo = (lo | token_lo) & ~token_hi
            flag |= saw
            if clk:
                if clk == 1:
                    if clock_level is None:
                        flag |= f_rose_if_low
                    elif not clock_level:
                        flag |= f_rose
                    clock_level = True
                    flag = (flag & ~f_level_low) | f_level_high
                else:
                    clock_level = False
                    flag = (flag & ~f_level_high) | f_level_low
            continue
        lead = token[0]
        if lead == "#":
            try:
                time = int(token[1:])
            except ValueError:
                raise TraceError(f"bad timestamp token {token!r}")
            if pending and time == cur_time:
                continue  # same instant continues
            if pending:
                if drop_quiet and not hi and not lo and not (
                    flag & rose_bits
                ):
                    level = flag & level_bits
                    if level:
                        quiet_level = level
                else:
                    times_append(cur_time)
                    sets_append(hi)
                    clears_append(lo)
                    flags_append(flag)
                    level = flag & level_bits
                    if level:
                        quiet_level = shipped_level = level
                hi = lo = flag = 0
            cur_time = time
            pending = True
            continue
        value = scalar_get(lead, miss)
        if value is not miss:
            # Scalar change of an *undeclared* code (malformed dumps
            # tolerated by the sequential reader): generic handling.
            code = token[1:]
            if not code:
                raise TraceError(f"scalar change {token!r} lacks an id")
        elif lead in "bBrR":
            code = next(stream, None)
            if code is None:
                raise TraceError(f"vector change {token!r} lacks an id")
            if lead in "bB":
                bits = token[1:]
                if any(c in "xXzZ" for c in bits):
                    value = None
                else:
                    try:
                        value = int(bits, 2)
                    except ValueError:
                        raise TraceError(f"bad vector value {token!r}")
            else:
                try:
                    value = int(float(token[1:]) != 0.0)
                except ValueError:
                    raise TraceError(f"bad real value {token!r}")
        else:
            # Directive in the change stream (rare path).
            if token == "$dumpoff":
                # Blackout section: skipped wholesale, values hold.
                for skipped in stream:
                    if skipped == "$end":
                        break
                else:
                    raise TraceError(
                        "unterminated $dumpoff section (missing $end)"
                    )
            elif token in _DUMP_DIRECTIVES or token == "$end":
                pass
            elif lead == "$":
                for skipped in stream:
                    if skipped == "$end":
                        break
                else:
                    raise TraceError(
                        f"unterminated {token} directive (missing $end)"
                    )
            else:
                raise TraceError(f"unexpected value-change token {token!r}")
            continue
        # One change record (scalar or vector/real) for `code`.
        pending = True
        if value is not None:
            flag |= _F_SAW
            high = value != 0
        else:
            high = False
        if has_clock and code in clock_codes:
            if high:
                if clock_level is None:
                    flag |= _F_ROSE_IF_LOW
                elif not clock_level:
                    flag |= _F_ROSE
            clock_level = high
            flag = (flag & ~(_F_LEVEL_LOW | _F_LEVEL_HIGH)) | (
                _F_LEVEL_HIGH if high else _F_LEVEL_LOW
            )
        bits = bits_get(code)
        if bits:
            if high:
                hi |= bits
                lo &= ~bits
            else:
                lo |= bits
                hi &= ~bits
    if pending:
        if drop_quiet and not hi and not lo and not (
            flag & (_F_ROSE | _F_ROSE_IF_LOW)
        ):
            level = flag & (_F_LEVEL_LOW | _F_LEVEL_HIGH)
            if level:
                quiet_level = level
        else:
            times_append(cur_time)
            sets_append(hi)
            clears_append(lo)
            flags_append(flag)
            level = flag & (_F_LEVEL_LOW | _F_LEVEL_HIGH)
            if level:
                quiet_level = shipped_level = level
    if drop_quiet and quiet_level != shipped_level:
        # Resync the level the next chunk's deferred rise will read.
        times_append(cur_time)
        sets_append(0)
        clears_append(0)
        flags_append(quiet_level)
    return times, sets, clears, flags


def _parse_chunk_task(task) -> tuple:
    """Pool entry point: parse one shipped chunk."""
    text, actions, code_bits, clock_codes, drop_quiet = task
    return _parse_chunk(text, actions, code_bits, frozenset(clock_codes),
                        drop_quiet)


def _symbol_mask(code_vals: int, symbol_bits_of: List[int]) -> int:
    """Symbol mask of a code-bit snapshot (multi-driver general case)."""
    mask = 0
    vals = code_vals
    while vals:
        low = vals & -vals
        mask |= symbol_bits_of[low.bit_length() - 1]
        vals ^= low
    return mask


def _replay(chunks: Sequence[tuple], has_clock: bool,
            period: Optional[int], offset: int, until: Optional[int],
            direct: bool, symbol_bits_of: Optional[List[int]]) -> array:
    """Apply the sampling discipline over concatenated delta records.

    This is the single sequential pass that owns the sampling
    semantics — it mirrors :meth:`VcdReader.valuations` line for line
    (same-instant merging, ``saw_value`` gating, periodic phase
    skipping, window early exit), but over per-instant bit deltas
    instead of per-change dict/set bookkeeping, emitting mask ints
    straight into the output array.
    """
    out = array("i")
    append = out.append
    code_vals = 0
    mask = 0
    level = False
    rose = False
    saw = False
    pending = False
    block_time = 0
    next_sample = offset
    for times, sets, clears, flags in chunks:
        for time, hi, lo, flag in zip(times, sets, clears, flags):
            if not (pending and time == block_time):
                # A new instant: close the previous one exactly as the
                # sequential reader does on a timestamp marker.
                if pending:
                    if has_clock:
                        if rose and block_time >= offset and (
                            until is None or block_time <= until
                        ):
                            append(mask)
                        rose = False
                    elif period is None and saw and block_time >= offset \
                            and (until is None or block_time <= until):
                        append(mask)
                if period is not None:
                    if saw:
                        while next_sample < time and (
                            until is None or next_sample <= until
                        ):
                            append(mask)
                            next_sample += period
                    else:
                        # Keep the grid's offset phase while skipping
                        # pre-first-value points.
                        while next_sample < time:
                            next_sample += period
                if until is not None and time > until:
                    return out  # the rest of the dump is out of window
                block_time = time
                pending = True
            if hi or lo:
                new_vals = (code_vals | hi) & ~lo
                if new_vals != code_vals:
                    code_vals = new_vals
                    mask = (code_vals if direct
                            else _symbol_mask(code_vals, symbol_bits_of))
            if flag:
                if flag & _F_SAW:
                    saw = True
                if has_clock:
                    if (flag & _F_ROSE) or (
                        (flag & _F_ROSE_IF_LOW) and not level
                    ):
                        rose = True
                    if flag & _F_LEVEL_HIGH:
                        level = True
                    elif flag & _F_LEVEL_LOW:
                        level = False
    # Close the final instant.
    if pending:
        in_window = block_time >= offset and (
            until is None or block_time <= until
        )
        if has_clock:
            if rose and in_window:
                append(mask)
        elif period is None and saw and in_window:
            append(mask)
        if period is not None and saw:
            stop = block_time if until is None else until
            while next_sample <= stop:
                append(mask)
                next_sample += period
    return out


def _header_end(text: str) -> int:
    """Offset just past the ``$enddefinitions ... $end`` of ``text``."""
    start = text.find("$enddefinitions")
    if start < 0:
        raise TraceError("VCD header ended without $enddefinitions")
    end = text.find("$end", start + len("$enddefinitions"))
    if end < 0:
        raise TraceError("VCD header ended without $enddefinitions")
    return end + len("$end")


def _split_points(body: str, n_chunks: int) -> List[int]:
    """Chunk start offsets into ``body`` at ``\\n#`` timestamp lines."""
    points = [0]
    for chunk in range(1, n_chunks):
        target = (len(body) * chunk) // n_chunks
        found = body.find("\n#", target)
        if found < 0:
            break
        point = found + 1
        if point > points[-1]:
            points.append(point)
    return points


def _conversion_plan(reader, codec: AlphabetCodec, clock: Optional[str]):
    """``(code_bits, clock_codes, direct, symbol_bits_of)`` for a dump.

    In the common 1:1 case (every code drives exactly the symbols no
    other code drives) codes are tracked directly in symbol-bit space
    and the replay's mask *is* the code snapshot.  When several codes
    drive one symbol (aliased nets bound to the same name), each code
    gets a private bit and the replay folds code bits to symbol bits —
    a symbol reads true while any driver is high, exactly the
    ``counts`` semantics of the sequential reader.
    """
    bound, clock_codes = reader._sampling_bound(clock)
    drivers: Dict[str, List[str]] = {}
    for code, symbols in bound.items():
        for symbol in symbols:
            drivers.setdefault(symbol, []).append(code)
    direct = all(len(codes) == 1 for codes in drivers.values())
    bit_of = codec.bit_of
    if direct:
        code_bits = {}
        for code, symbols in bound.items():
            bits = 0
            for symbol in symbols:
                bits |= bit_of.get(symbol, 0)
            if bits:
                code_bits[code] = bits
        return code_bits, clock_codes, True, None
    codes = sorted(bound)
    code_bits = {code: 1 << position for position, code in enumerate(codes)}
    symbol_bits_of = []
    for code in codes:
        bits = 0
        for symbol in bound[code]:
            bits |= bit_of.get(symbol, 0)
        symbol_bits_of.append(bits)
    return code_bits, clock_codes, False, symbol_bits_of


def _sequential_masks(text: str, codec: AlphabetCodec, binding,
                      clock, period, offset, until) -> array:
    """Reference path: full sequential parse through ``VcdReader``."""
    from repro.trace.vcd_reader import VcdReader

    encode = codec.encode
    reader = VcdReader.from_text(text, binding=binding)
    return array("i", [
        encode(valuation)
        for valuation in reader.valuations(clock=clock, period=period,
                                           offset=offset, until=until)
    ])


def masks_from_vcd_text(
    text: str,
    codec: AlphabetCodec,
    binding=None,
    clock: Optional[str] = None,
    period: Optional[int] = None,
    offset: int = 0,
    until: Optional[int] = None,
    jobs: Optional[int] = 1,
    mp_context: Optional[str] = None,
    oversubscribe: bool = False,
    _force_splits: Optional[List[int]] = None,
) -> array:
    """Encode a VCD document to one per-tick mask array.

    Byte-identical to encoding
    :meth:`VcdReader.valuations <repro.trace.vcd_reader.VcdReader.valuations>`
    through ``codec`` tick by tick, but via the lean delta parser —
    and, with ``jobs > 1`` on a large dump, across the persistent
    worker pools with one chunk per worker.  Structural surprises
    (a seam landing inside a directive body, malformed chunks) fall
    back first to a single-chunk parse, then to the sequential
    reader.  ``_force_splits`` pins chunk boundaries (tests).
    """
    from repro.trace.shard import _get_pool, resolve_jobs
    from repro.trace.vcd_reader import VcdReader

    if clock is not None and period is not None:
        raise TraceError("choose clock or period sampling, not both")
    if period is not None and period <= 0:
        raise TraceError("sampling period must be positive")
    try:
        header_end = _header_end(text)
        reader = VcdReader.from_text(text[:header_end], binding=binding)
        code_bits, clock_codes, direct, symbol_bits_of = _conversion_plan(
            reader, codec, clock
        )
    except TraceError:
        # Unsplittable or surprising structure: the sequential reader
        # is the semantics of record (including its error behaviour).
        return _sequential_masks(text, codec, binding, clock, period,
                                 offset, until)
    body = text[header_end:]
    jobs = resolve_jobs(jobs, oversubscribe=oversubscribe)
    splits = _force_splits
    if splits is None:
        if jobs > 1 and len(body) >= _MIN_PARALLEL_BYTES:
            splits = _split_points(body, jobs)
        else:
            splits = [0]
    bounds = list(zip(splits, splits[1:] + [len(body)]))
    has_clock = bool(clock_codes)
    actions = _scalar_actions(
        (signal.code for signal in reader.signals), code_bits, clock_codes
    )
    try:
        if len(bounds) > 1:
            pool = _get_pool(mp_context, min(jobs, len(bounds)))
            chunks = pool.map(_parse_chunk_task, [
                (body[start:end], actions, code_bits, tuple(clock_codes),
                 has_clock)
                for start, end in bounds
            ])
        else:
            chunks = [_parse_chunk(body, actions, code_bits, clock_codes,
                                   has_clock)]
        return _replay(chunks, has_clock, period, offset, until,
                       direct, symbol_bits_of)
    except TraceError:
        if len(bounds) > 1:
            # A seam may have cut a directive body; one chunk has no
            # seams, so retry before blaming the dump itself.
            try:
                chunks = [_parse_chunk(body, actions, code_bits,
                                       clock_codes, has_clock)]
                return _replay(chunks, has_clock, period, offset, until,
                               direct, symbol_bits_of)
            except TraceError:
                pass
        return _sequential_masks(text, codec, binding, clock, period,
                                 offset, until)


def masks_from_vcd(
    source: Union[str, "os.PathLike[str]"],
    codec: AlphabetCodec,
    **kwargs,
) -> array:
    """:func:`masks_from_vcd_text` over a dump file."""
    with open(os.fspath(source), "rb") as stream:
        text = stream.read().decode("utf-8", "replace")
    return masks_from_vcd_text(text, codec, **kwargs)


# -- content-addressed ingest ------------------------------------------------
def corpus_key(
    content_digest: str,
    codec: Union[AlphabetCodec, Iterable[str]],
    binding=None,
    clock: Optional[str] = None,
    period: Optional[int] = None,
    offset: int = 0,
    until: Optional[int] = None,
) -> str:
    """Cache key of one (dump, binding, codec, sampling) combination.

    Any ingredient changing — dump bytes, signal binding, codec symbol
    ordering, sampling discipline, or the ``.rtrc`` format version —
    yields a different key, so stale entries are never *read*, only
    orphaned (and rewritten under the new key on the next miss).
    """
    payload = json.dumps({
        "format": RTRC_VERSION,
        "content": content_digest,
        "codec": codec_fingerprint(codec),
        "binding": binding.fingerprint() if binding is not None else None,
        "clock": clock,
        "period": period,
        "offset": offset,
        "until": until,
    }, sort_keys=True).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def ingest_vcd(
    path: Union[str, "os.PathLike[str]"],
    codec: AlphabetCodec,
    cache: Optional[Union[CorpusCache, str]] = None,
    binding=None,
    clock: Optional[str] = None,
    period: Optional[int] = None,
    offset: int = 0,
    until: Optional[int] = None,
    jobs: Optional[int] = 1,
    mp_context: Optional[str] = None,
    oversubscribe: bool = False,
    refresh: bool = False,
) -> Tuple[ColumnarTraceSet, bool, Optional[str]]:
    """One dump -> ``(columnar set, cache_hit, cache_path)``.

    With a ``cache`` (a :class:`~repro.cache.CorpusCache` or its root
    directory), a warm call skips parsing entirely: the entry keyed by
    the dump's content digest + binding + codec fingerprint + sampling
    parameters is loaded and verified (crc32, version, fingerprint) —
    a corrupted, truncated, or stale entry is treated as a miss,
    evicted, and rebuilt from the dump.  ``refresh=True`` forces the
    rebuild.
    """
    path = os.fspath(path)
    with open(path, "rb") as stream:
        data = stream.read()
    fingerprint = codec_fingerprint(codec)
    entry_path: Optional[str] = None
    key: Optional[str] = None
    if cache is not None:
        if not isinstance(cache, CorpusCache):
            cache = CorpusCache(cache)
        key = corpus_key(hashlib.sha256(data).hexdigest(), codec,
                         binding=binding, clock=clock, period=period,
                         offset=offset, until=until)
        entry_path = cache.path_for(key)
        if not refresh:
            blob = cache.load_bytes(key)
            if blob is not None:
                try:
                    loaded = ColumnarTraceSet.from_bytes(blob)
                    if loaded.fingerprint != fingerprint:
                        raise TraceError("cached codec fingerprint mismatch")
                    return loaded, True, entry_path
                except TraceError:
                    # Never serve a doubtful entry: drop it, re-parse.
                    cache.invalidate(key)
    text = data.decode("utf-8", "replace")
    masks = masks_from_vcd_text(
        text, codec, binding=binding, clock=clock, period=period,
        offset=offset, until=until, jobs=jobs, mp_context=mp_context,
        oversubscribe=oversubscribe,
    )
    built = ColumnarTraceSet.from_mask_arrays([masks], codec.symbols, meta={
        "source": os.path.basename(path),
        "source_sha256": hashlib.sha256(data).hexdigest(),
        "clock": clock,
        "period": period,
        "offset": offset,
        "until": until,
    })
    if cache is not None and key is not None:
        cache.store_bytes(key, built.to_bytes())
    return built, False, entry_path


def check_vcd_cached(
    monitor,
    paths: Sequence[str],
    cache: Union[CorpusCache, str],
    jobs: Optional[int] = None,
    clock: Optional[str] = None,
    period: Optional[int] = None,
    offset: int = 0,
    until: Optional[int] = None,
    binding=None,
    mp_context: Optional[str] = None,
    oversubscribe: bool = False,
    engine: str = "auto",
    max_recorded: int = 10_000,
) -> list:
    """Check dumps through the corpus cache; one StreamReport per path.

    The cache-aware twin of
    :func:`~repro.trace.shard.run_sharded_vcd`: each dump is resolved
    through :func:`ingest_vcd` (warm hits read pre-encoded masks off
    disk; misses run the chunk-parallel converter and populate the
    cache) and the mask stream is fed to the batch kernel selected by
    ``engine`` (the planner resolves ``"auto"`` per dump — each dump
    is one width-1 batch, so auto takes the scalar compiled loop) —
    verdicts are identical to the streaming path on detector specs.
    """
    from repro.runtime.compiled import as_compiled
    from repro.runtime.engines import (
        AUTO,
        Workload,
        plan_execution,
        require_backend,
    )
    from repro.trace.streaming import StreamReport

    if engine != AUTO:
        # Validate up front so an empty path list still rejects a bad
        # engine with the registry's uniform wording.
        require_backend(engine, "batch", error_cls=TraceError)
    compiled = as_compiled(monitor)
    if not isinstance(cache, CorpusCache):
        cache = CorpusCache(cache)
    reports = []
    for path in paths:
        columns, _, _ = ingest_vcd(
            path, compiled.codec, cache=cache, binding=binding,
            clock=clock, period=period, offset=offset, until=until,
            jobs=jobs, mp_context=mp_context, oversubscribe=oversubscribe,
        )
        masks = columns.masks(0)
        plan = plan_execution(compiled, Workload(1, len(masks)), engine,
                              capability="batch", error_cls=TraceError)
        result = plan.encoded_runner()(compiled, [masks])[0]
        detections = list(result.detections)
        reports.append(StreamReport(
            compiled.name,
            ticks=len(masks),
            detections=detections[:max_recorded],
            n_detections=len(detections),
            violations=[],
            n_violations=0,
            n_passes=0,
            n_pending=0,
            stopped_early=False,
        ))
    return reports
