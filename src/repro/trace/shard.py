"""Sharded parallel checking: compiled tables fanned out across cores.

:func:`~repro.runtime.compiled.run_many` steps many traces in
lock-step inside one process; for large workloads the scaling lever is
processes, not ticks-per-loop.  :func:`run_sharded` partitions the
trace list into contiguous, tick-balanced chunks and runs each chunk
through ``run_many`` in a worker process; :func:`run_bank_sharded`
does the same for every member of a
:class:`~repro.synthesis.compose.MonitorBank` (member x chunk work
units, so even a single huge trace list parallelises across members).

Worker processes are *reused*: the first sharded call spins up a
persistent pool (one per multiprocessing start method) and later calls
— a campaign loop issues hundreds — pay no spawn cost.  Monitors
travel inside tasks as pickled payloads cached worker-side by digest,
so a pool serves any number of different monitors and each worker
unpickles a given monitor once.  This is why
:class:`~repro.runtime.compiled.CompiledMonitor` (and everything it
references, down to guard expressions) pickles cleanly.  Results come
back as ordinary :class:`~repro.monitor.engine.MonitorResult` lists in
input order, indistinguishable from a single-process run.

Encoded mask payloads cross the process boundary through
``multiprocessing.shared_memory`` when they are large enough to make
the segment worthwhile: the parent packs every trace's int32 masks
into one segment plus an offsets table and tasks carry only the
segment name and slice bounds, so workers map the payload zero-copy
instead of unpickling it (see the handoff section below; pickle
remains the universal fallback).

Worker counts are capped at the *available* core count by default —
the scheduler affinity set where the platform exposes it, so
cgroup/container-limited runs do not oversubscribe: a CPU-bound
lock-step loop gains nothing from oversubscription, it only pays
extra process and pickling overhead (the pre-cap benchmark showed
``jobs=4`` running 3x *slower* than single-process on a single-core
container).  Pass ``oversubscribe=True`` to force more workers than
cores — tests of cross-process behaviour on small machines need that.

Scoreboards: each trace gets a fresh scoreboard in its worker.
Injected ``scoreboards`` are consumed as *initial* states; unlike
``run_many``, mutations made by workers do not propagate back to the
caller's objects.
"""

from __future__ import annotations

import atexit
import hashlib
import multiprocessing
import os
import pickle
import struct
import sys
import threading
from array import array
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import MonitorError
from repro.monitor.automaton import Monitor
from repro.monitor.engine import MonitorResult
from repro.monitor.scoreboard import Scoreboard
from repro.runtime.compiled import (
    CompiledMonitor,
    as_compiled,
)
from repro.runtime.engines import (
    AUTO,
    Workload,
    plan_execution,
    require_backend,
)
from repro.semantics.run import Trace

__all__ = ["run_sharded", "run_sharded_encoded", "run_bank_sharded",
           "run_sharded_vcd", "available_cores", "resolve_jobs",
           "shutdown_worker_pools"]


def available_cores() -> int:
    """Cores this process may actually run on.

    ``os.cpu_count()`` reports the machine, not the process: under a
    cgroup cpuset or ``taskset`` affinity mask (containers, CI
    runners) it overstates the budget and a "one worker per core"
    pool oversubscribes the cores we really have.  The scheduler
    affinity set is the truth where the platform exposes it.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            affinity = len(getaffinity(0))
        except OSError:
            affinity = 0
        if affinity > 0:
            return affinity
    return max(1, os.cpu_count() or 1)


def resolve_jobs(jobs: Optional[int], oversubscribe: bool = False) -> int:
    """Normalise a ``--jobs``-style request to a worker count.

    ``None`` or ``0`` means "one worker per available core" (the
    affinity set, not the raw machine core count — see
    :func:`available_cores`); negative values are rejected.  Requests
    beyond the available cores are clamped — more CPU-bound workers
    than cores is pure overhead — unless ``oversubscribe`` explicitly
    asks for them.
    """
    cores = available_cores()
    if jobs is None or jobs == 0:
        return cores
    if jobs < 0:
        raise MonitorError(f"jobs must be >= 0 (got {jobs})")
    if not oversubscribe:
        return min(jobs, cores)
    return jobs


# -- persistent worker pools -----------------------------------------------
#: One long-lived pool per start method: (pool, worker_count).  Reused
#: across calls so campaign loops pay the spawn cost once.  A call
#: asking for a *different* worker count retires the cached pool
#: (terminate + join, so its processes are reaped, not stranded) and
#: spins up an exact-size replacement — before this policy an
#: oversubscribed test call could leave a 32-process pool idling for
#: the rest of the interpreter's life.
_POOLS: Dict[str, Tuple[object, int]] = {}
_POOLS_LOCK = threading.RLock()


def _retire_pool(pool) -> None:
    pool.terminate()
    pool.join()


def _get_pool(method: Optional[str], workers: int):
    context = multiprocessing.get_context(method)
    key = context.get_start_method()
    with _POOLS_LOCK:
        cached = _POOLS.get(key)
        if cached is not None:
            pool, size = cached
            if size == workers:
                return pool
            del _POOLS[key]
            _retire_pool(pool)
        pool = context.Pool(processes=workers)
        _POOLS[key] = (pool, workers)
        return pool


def shutdown_worker_pools() -> None:
    """Terminate every cached worker pool (tests; interpreter exit).

    Idempotent and safe under concurrent callers: the registry is
    atomically drained under the lock, so two racing shutdowns (or a
    shutdown racing ``_get_pool``) each operate on disjoint pools and
    a second call finds nothing left to do.
    """
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool, _ in pools:
        _retire_pool(pool)


atexit.register(shutdown_worker_pools)


#: Worker-side LRU cache of shipped monitors, keyed by payload digest
#: so a reused pool serves many monitors and unpickles each at most
#: once per worker.  Sized above any realistic bank so member-major
#: task streams (run_bank_sharded cycles through every member) do not
#: thrash it back to one unpickle per task.
_MONITOR_CACHE: Dict[bytes, object] = {}
_MONITOR_CACHE_LIMIT = 64


def _cached_monitor(digest: bytes, payload: bytes):
    monitor = _MONITOR_CACHE.get(digest)
    if monitor is None:
        monitor = pickle.loads(payload)
        while len(_MONITOR_CACHE) >= _MONITOR_CACHE_LIMIT:
            _MONITOR_CACHE.pop(next(iter(_MONITOR_CACHE)))
    else:
        # Refresh recency (dicts iterate in insertion order, so the
        # first key is always the least recently used).
        del _MONITOR_CACHE[digest]
    _MONITOR_CACHE[digest] = monitor
    return monitor


def _ship(compiled: CompiledMonitor) -> Tuple[bytes, bytes]:
    """(digest, payload) for one monitor, source stripped.

    Workers never read the interpreted source automaton; stripping it
    roughly halves the payload.
    """
    payload = pickle.dumps(compiled.without_source())
    return hashlib.sha1(payload).digest(), payload


# -- zero-copy mask handoff -------------------------------------------------
# Encoded mask arrays used to travel to the pool *inside* every task —
# pickled in the parent, piped, unpickled per worker.  For wide batches
# the arrays dominate the task payload (the monitor ships once and is
# digest-cached), so the pickle tax was the measured reason
# ``shard_speedup_jobs4`` sat far under the core count.  Batches above
# ``_MIN_SHM_BYTES`` now land in one ``multiprocessing.shared_memory``
# segment — int32 payload plus an offsets table, the same layout as a
# ``.rtrc`` body — and tasks carry only ``(segment name, offsets,
# start, end)``.  Workers map the segment and slice zero-copy views
# (NumPy ``frombuffer`` or a cast ``memoryview``).  Anything that keeps
# shared memory from working — platform without ``/dev/shm``, creation
# failure, ``REPRO_NO_SHM=1`` — degrades to the original pickled path.

try:  # pragma: no cover - absent only on exotic platforms
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None
if os.environ.get("REPRO_NO_SHM"):  # test hook: force the pickle path
    _shared_memory = None

#: Mask payloads below this size ship pickled: one pipe write costs
#: less than a segment create + map round trip.
_MIN_SHM_BYTES = 1 << 15


def _mask_bytes(masks) -> bytes:
    """Little-endian int32 bytes of one mask sequence."""
    if isinstance(masks, array) and masks.typecode == "i" \
            and masks.itemsize == 4:
        if sys.byteorder == "little":
            return masks.tobytes()
        swapped = array("i", masks)
        swapped.byteswap()
        return swapped.tobytes()
    if hasattr(masks, "astype"):  # NumPy array (never imported here)
        return masks.astype("<i4", copy=False).tobytes()
    return struct.pack(f"<{len(masks)}i", *masks)


class _SharedMasks:
    """Parent-side handle of one shared-memory mask payload."""

    __slots__ = ("segment", "offsets")

    def __init__(self, segment, offsets: Tuple[int, ...]):
        self.segment = segment
        self.offsets = offsets

    def task_spec(self, start: int, end: int) -> tuple:
        """The picklable handoff record for traces ``[start, end)``."""
        return ("shm", self.segment.name, self.offsets, start, end)

    def release(self) -> None:
        """Close and unlink the segment (workers keep their mappings)."""
        try:
            self.segment.close()
        except (OSError, BufferError):  # pragma: no cover - defensive
            pass
        try:
            self.segment.unlink()
        except OSError:  # pragma: no cover - already gone
            pass


def _share_masks(mask_arrays) -> Optional[_SharedMasks]:
    """Pack mask arrays into one shared segment (``None``: use pickle).

    Falling back is never an error: shared memory is an optimisation
    with identical results, so any failure to obtain a segment simply
    keeps the per-task pickle path.
    """
    if _shared_memory is None:
        return None
    offsets = [0]
    for masks in mask_arrays:
        offsets.append(offsets[-1] + len(masks))
    nbytes = 4 * offsets[-1]
    if nbytes < _MIN_SHM_BYTES:
        return None
    try:
        segment = _shared_memory.SharedMemory(create=True, size=nbytes)
    except (OSError, ValueError):  # pragma: no cover - no /dev/shm
        return None
    try:
        view = memoryview(segment.buf)
        cursor = 0
        for masks in mask_arrays:
            data = _mask_bytes(masks)
            view[cursor:cursor + len(data)] = data
            cursor += len(data)
        del view
    except BaseException:  # pragma: no cover - defensive
        segment.close()
        try:
            segment.unlink()
        except OSError:
            pass
        raise
    return _SharedMasks(segment, tuple(offsets))


def _attach_segment(name: str):
    """Map an existing segment without resource-tracker registration.

    Only the creating parent owns a segment's lifetime.  Before Python
    3.13 (``track=False``) every attach *also* registers it with the
    resource tracker, which then "cleans up" on the attacher's behalf —
    under ``spawn`` that unlinks a live segment when a worker exits,
    and under ``fork`` (tracker shared with the parent) a worker-side
    unregister collides with the parent's own.  Suppressing the
    registration during attach sidesteps both.
    """
    try:
        return _shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        pass
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return _shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _shared_chunk_views(name: str, offsets: Sequence[int],
                        start: int, end: int, want_numpy: bool = False):
    """``(segment, views)``: zero-copy per-trace mask views of a chunk.

    ``want_numpy`` picks the view flavour for the consuming kernel: the
    vector engine eats NumPy arrays natively, but the scalar compiled
    loop materialises ``list(stream)`` — from a NumPy view that is a
    list of NumPy int32 *scalars*, whose dict/table indexing is slower
    than the pickle path it replaced.  A cast ``memoryview`` yields
    plain Python ints, also zero-copy, so that is the default.
    """
    segment = _attach_segment(name)
    total = offsets[-1]
    flat = None
    if want_numpy and not os.environ.get("REPRO_NO_NUMPY"):
        try:
            import numpy

            flat = numpy.frombuffer(segment.buf, dtype="<i4", count=total)
        except ImportError:
            flat = None
    if flat is None:
        # A segment may be page-rounded beyond the payload; slice first
        # so the cast sees exactly the int32 payload.
        payload = memoryview(segment.buf)[:4 * total]
        if sys.byteorder == "little":
            flat = payload.cast("i")
        else:  # pragma: no cover - big-endian hosts
            flat = array("i")
            flat.frombytes(payload.tobytes())
            flat.byteswap()
    views = [flat[offsets[index]:offsets[index + 1]]
             for index in range(start, end)]
    return segment, views


def _run_chunk(task) -> List[MonitorResult]:
    digest, payload, mask_spec, scoreboards, record_transitions, engine = task
    # Tasks carry a concrete registered backend name (the parent planned
    # any "auto" before fanning out), so workers resolve it the same way
    # every in-process entry point does.
    backend = require_backend(engine, "sharded_worker")
    runner = backend.encoded_runner()
    monitor = _cached_monitor(digest, payload)
    if mask_spec[0] == "shm":
        _, name, offsets, start, end = mask_spec
        segment, views = _shared_chunk_views(
            name, offsets, start, end, want_numpy=backend.prefers_numpy
        )
        try:
            return runner(monitor, views, scoreboards,
                          record_transitions=record_transitions)
        finally:
            del views
            try:
                segment.close()
            except BufferError:  # pragma: no cover - view escaped into
                pass             # an in-flight traceback; fd dies with
                                 # the worker
    return runner(monitor, mask_spec[1], scoreboards,
                  record_transitions=record_transitions)


def _chunk_bounds(lengths: Sequence[int], n_chunks: int) -> List[Tuple[int, int]]:
    """Contiguous ``[start, end)`` slices with near-equal total ticks.

    Contiguity keeps results trivially reorderable; balancing by tick
    count (not trace count) stops one chunk of long traces from
    serialising the whole pool.
    """
    total = sum(lengths)
    bounds: List[Tuple[int, int]] = []
    start = 0
    consumed = 0
    for chunk in range(n_chunks):
        target = (total * (chunk + 1)) // n_chunks
        end = start
        # Take the next trace only while it still fits under the
        # cumulative target (a chunk is never left empty).  Stopping
        # *before* an overshooting long trace keeps it for the next
        # chunk — greedily swallowing it would glue a tail-heavy
        # workload into one chunk and serialise the pool.
        while end < len(lengths) and (
            end == start or consumed + lengths[end] <= target
        ):
            consumed += lengths[end]
            end += 1
        # Never strand the tail: the last chunk takes whatever is left.
        if chunk == n_chunks - 1:
            end = len(lengths)
        if end > start:
            bounds.append((start, end))
        start = end
    return bounds


def run_sharded(
    monitor: Union[Monitor, CompiledMonitor],
    traces: Sequence[Trace],
    jobs: Optional[int] = None,
    scoreboards: Optional[Sequence[Scoreboard]] = None,
    mp_context: Optional[str] = None,
    record_transitions: bool = False,
    oversubscribe: bool = False,
    engine: str = AUTO,
) -> List[MonitorResult]:
    """Run one monitor over many traces across worker processes.

    Drop-in for :func:`~repro.runtime.compiled.run_many` (identical
    results, in input order).  ``jobs=None`` uses every core; with one
    worker (or at most one trace) no pool is used at all.
    ``mp_context`` selects the multiprocessing start method
    (``"fork"``/``"spawn"``; default: the platform's default).
    ``record_transitions`` reports the transitions each trace took
    (coverage folding); transition objects round-trip pickling with
    structural equality, so they fold into collectors tracking the
    caller's monitor.  ``engine`` selects the worker-side batch kernel
    from the registry (``"auto"``, the default, lets
    :func:`~repro.runtime.engines.plan_execution` pick per chunk shape;
    explicit names are honoured verbatim, identical results either
    way).

    Traces are encoded to valuation-mask arrays *once, in the parent*
    (through the shared codec cache); large batches hand the arrays to
    the pool through one shared-memory segment (workers slice zero-copy
    views), small ones ship them pickled — either way a fraction of the
    cost of shipping ``Trace`` objects, and workers never re-encode.
    """
    compiled = as_compiled(monitor)
    plan = plan_execution(compiled, Workload.from_traces(traces),
                          engine, capability="sharded_worker")
    if scoreboards is not None and len(scoreboards) != len(traces):
        raise MonitorError(
            "run_sharded needs exactly one scoreboard per trace when provided"
        )
    jobs = resolve_jobs(jobs, oversubscribe=oversubscribe)
    if jobs <= 1 or len(traces) <= 1:
        # Keep the documented isolation contract on the in-process
        # fallback too: workers mutate pickled copies, so this path
        # must not mutate the caller's scoreboards either.
        if scoreboards is not None:
            scoreboards = pickle.loads(pickle.dumps(list(scoreboards)))
        return plan.batch_runner()(compiled, traces, scoreboards,
                                   record_transitions=record_transitions)
    masks = compiled.codec.encode_many(traces)
    return _fan_out_encoded(compiled, masks, plan.engine, jobs,
                            scoreboards, mp_context, record_transitions)


def run_sharded_encoded(
    monitor: Union[Monitor, CompiledMonitor],
    mask_arrays: Sequence,
    jobs: Optional[int] = None,
    scoreboards: Optional[Sequence[Scoreboard]] = None,
    mp_context: Optional[str] = None,
    record_transitions: bool = False,
    oversubscribe: bool = False,
    engine: str = AUTO,
) -> List[MonitorResult]:
    """:func:`run_sharded` over pre-encoded valuation-mask arrays.

    The entry point for callers that already hold the encoded corpus —
    the serve layer's cached ``corpus`` op hands
    :class:`~repro.trace.columnar.ColumnarTraceSet` mask arrays
    straight to the pool without re-encoding (or re-touching the trace
    objects at all).  Semantics otherwise match :func:`run_sharded`.
    """
    compiled = as_compiled(monitor)
    plan = plan_execution(compiled, Workload.from_traces(mask_arrays),
                          engine, capability="sharded_worker")
    if scoreboards is not None and len(scoreboards) != len(mask_arrays):
        raise MonitorError(
            "run_sharded needs exactly one scoreboard per trace when provided"
        )
    jobs = resolve_jobs(jobs, oversubscribe=oversubscribe)
    if jobs <= 1 or len(mask_arrays) <= 1:
        if scoreboards is not None:
            scoreboards = pickle.loads(pickle.dumps(list(scoreboards)))
        return plan.encoded_runner()(
            compiled, mask_arrays, scoreboards,
            record_transitions=record_transitions,
        )
    return _fan_out_encoded(compiled, mask_arrays, plan.engine, jobs,
                            scoreboards, mp_context, record_transitions)


def _fan_out_encoded(compiled, masks, engine_name, jobs, scoreboards,
                     mp_context, record_transitions) -> List[MonitorResult]:
    """Chunk encoded mask arrays and run them through the pool."""
    lengths = [len(stream) for stream in masks]
    bounds = _chunk_bounds(lengths, min(jobs, len(masks)))
    digest, payload = _ship(compiled)
    shared = _share_masks(masks)
    try:
        tasks = [
            (digest, payload,
             shared.task_spec(start, end) if shared is not None
             else ("inline", list(masks[start:end])),
             list(scoreboards[start:end]) if scoreboards is not None
             else None,
             record_transitions, engine_name)
            for start, end in bounds
        ]
        pool = _get_pool(mp_context, min(jobs, len(tasks)))
        chunk_results = pool.map(_run_chunk, tasks)
    finally:
        if shared is not None:
            shared.release()
    results: List[MonitorResult] = []
    for chunk in chunk_results:
        results.extend(chunk)
    return results


def _stream_vcd_with(monitor, task):
    """Parse one dump and stream it through ``monitor`` (in-process)."""
    from repro.trace.streaming import StreamingChecker
    from repro.trace.vcd_reader import VcdReader

    path, clock, period, offset, until, binding, engine = task
    with VcdReader(path, binding=binding) as reader:
        return StreamingChecker(monitor, engine=engine).feed(
            reader.valuations(clock=clock, period=period, offset=offset,
                              until=until)
        )


def _stream_vcd_task(task):
    digest, payload, stream_task = task
    return _stream_vcd_with(_cached_monitor(digest, payload), stream_task)


def run_sharded_vcd(
    monitor: Union[Monitor, CompiledMonitor],
    paths: Sequence[str],
    jobs: Optional[int] = None,
    clock: Optional[str] = None,
    period: Optional[int] = None,
    offset: int = 0,
    until: Optional[int] = None,
    binding=None,
    mp_context: Optional[str] = None,
    oversubscribe: bool = False,
    engine: str = AUTO,
    cache=None,
) -> list:
    """Check many VCD dumps in parallel, parsing inside the workers.

    Unlike materialising each dump and calling :func:`run_sharded`,
    only the *paths* travel to the pool: each worker opens, parses and
    streams its own dump through a
    :class:`~repro.trace.streaming.StreamingChecker`, so both the
    parsing cost and the memory stay per-worker-bounded no matter how
    large the dumps are.  Returns one
    :class:`~repro.trace.streaming.StreamReport` per path, in input
    order.  ``clock``/``period``/``offset``/``until``/``binding`` are
    the :meth:`~repro.trace.vcd_reader.VcdReader.valuations` sampling
    parameters, applied to every dump.

    ``cache`` (a :class:`~repro.cache.CorpusCache` or its root
    directory) switches to the columnar corpus path: dumps are
    resolved through :func:`~repro.trace.columnar.ingest_vcd` — warm
    entries skip parsing entirely and hand the batch kernel
    pre-encoded mask arrays; misses run the chunk-parallel converter
    and populate the cache.  Verdicts are identical either way.
    """
    compiled = as_compiled(monitor)
    if cache is not None:
        # The corpus path feeds pre-encoded masks to the *batch*
        # kernels, so it accepts batch-only backends (native) that the
        # streaming path below must reject; check_vcd_cached validates
        # against the batch capability itself.
        from repro.trace.columnar import check_vcd_cached

        return check_vcd_cached(
            compiled, [os.fspath(path) for path in paths], cache,
            jobs=jobs, clock=clock, period=period, offset=offset,
            until=until, binding=binding, mp_context=mp_context,
            oversubscribe=oversubscribe, engine=engine,
        )
    # Streams resolve per worker: "auto" travels verbatim and each
    # StreamingChecker plans against its own process's NumPy state.
    if engine != AUTO:
        require_backend(engine, "streaming")
    jobs = resolve_jobs(jobs, oversubscribe=oversubscribe)
    stream_tasks = [
        (os.fspath(path), clock, period, offset, until, binding, engine)
        for path in paths
    ]
    if jobs <= 1 or len(stream_tasks) <= 1:
        return [_stream_vcd_with(compiled, task) for task in stream_tasks]
    digest, payload = _ship(compiled)
    tasks = [(digest, payload, task) for task in stream_tasks]
    pool = _get_pool(mp_context, min(jobs, len(tasks)))
    return pool.map(_stream_vcd_task, tasks)


def run_bank_sharded(
    bank,
    traces: Sequence[Trace],
    jobs: Optional[int] = None,
    mp_context: Optional[str] = None,
    oversubscribe: bool = False,
    engine: str = AUTO,
) -> list:
    """Run every member of a monitor bank over many traces, sharded.

    Returns one :class:`~repro.synthesis.compose.BankResult` per trace
    (input order), identical to ``bank.run_batch(traces)``.  Work units
    are (member, trace-chunk) pairs, so parallelism comes from both
    axes — many traces, or few traces against a many-member bank.
    Traces are encoded in the parent once per distinct member codec
    (members over the same alphabet share mask arrays through the codec
    cache) and only the arrays ship to the pool.
    """
    from repro.synthesis.compose import BankResult

    members = bank.compiled_members()
    # The bank's members share one workload shape; plan once against
    # the first member (same-alphabet members lower to like tables).
    workload = Workload.from_traces(traces) if members else Workload()
    plan = plan_execution(members[0] if members else None, workload,
                          engine, capability="sharded_worker")
    jobs = resolve_jobs(jobs, oversubscribe=oversubscribe)
    if jobs <= 1 or (len(traces) <= 1 and len(members) <= 1):
        return bank.run_batch(traces, engine=plan.engine)
    if not traces:
        return []
    lengths = [len(trace) for trace in traces]
    per_member_chunks = max(1, jobs // len(members))
    bounds = _chunk_bounds(lengths, min(per_member_chunks, len(traces)))
    shipped = [_ship(member) for member in members]
    tasks = []
    member_of_task = []
    encoded_by_codec: Dict[tuple, list] = {}
    shared_by_codec: Dict[tuple, Optional[_SharedMasks]] = {}
    try:
        for member_index, (digest, payload) in enumerate(shipped):
            codec = members[member_index].codec
            masks = encoded_by_codec.get(codec.symbols)
            if masks is None:
                masks = codec.encode_many(traces)
                encoded_by_codec[codec.symbols] = masks
                # One segment per distinct alphabet: same-codec members
                # read the same shared payload, encoded and mapped once.
                shared_by_codec[codec.symbols] = _share_masks(masks)
            shared = shared_by_codec[codec.symbols]
            for start, end in bounds:
                tasks.append((digest, payload,
                              shared.task_spec(start, end)
                              if shared is not None
                              else ("inline", list(masks[start:end])),
                              None, False, plan.engine))
                member_of_task.append(member_index)
        pool = _get_pool(mp_context, min(jobs, len(tasks)))
        chunk_results = pool.map(_run_chunk, tasks)
    finally:
        for shared in shared_by_codec.values():
            if shared is not None:
                shared.release()
    # Tasks are member-major with chunks in trace order, and pool.map
    # preserves order, so a single pass reassembles per-member lists.
    per_member: List[List[MonitorResult]] = [[] for _ in members]
    for member_index, chunk in zip(member_of_task, chunk_results):
        per_member[member_index].extend(chunk)
    return [
        BankResult([member[i] for member in per_member])
        for i in range(len(traces))
    ]
