"""Online checking: valuation streams in, verdicts out, memory bounded.

Batch checking (:func:`~repro.monitor.engine.run_monitor`,
:class:`~repro.monitor.checker.AssertionChecker`) materialises the
whole trace and keeps full state histories.  A
:class:`StreamingChecker` instead consumes any valuation iterable —
typically :meth:`VcdReader.valuations <repro.trace.vcd_reader.VcdReader.valuations>`
over a dump that never fits in memory — pushing each element into the
monitor engines as it arrives:

* engines run with ``record_history=False`` (no per-tick state or
  transition log) and are drained of detections every tick;
* recorded detections/violations are capped at ``max_recorded``
  (counts stay exact beyond the cap);
* checking can stop at the first violation (``stop_on_violation``,
  implication specs) or first detection (``stop_on_detection``),
  which aborts the ingest loop without reading the rest of the dump.

Specs: a plain chart (or :class:`~repro.synthesis.compose.MonitorBank`,
:class:`~repro.monitor.automaton.Monitor`,
:class:`~repro.runtime.compiled.CompiledMonitor`) streams as a
*detector*; an :class:`~repro.cesc.charts.Implication` chart streams
as an *assertion* with live obligations, exactly mirroring
:class:`~repro.monitor.checker.AssertionChecker` verdicts.
"""

from __future__ import annotations

from itertools import islice
from typing import Iterable, List, Tuple

from repro.errors import MonitorError
from repro.logic.valuation import Valuation
from repro.monitor.automaton import Monitor
from repro.monitor.checker import (
    AssertionChecker,
    Obligation,
    Verdict,
    advance_obligation,
)
from repro.runtime.engines import (
    AUTO,
    backend as engine_backend,
    plan_streaming,
    require_backend,
)

__all__ = ["StreamReport", "StreamingChecker"]

#: Ticks buffered per vector-mode chunk: enough to amortize the
#: per-chunk Python overhead, small enough that early exits stay
#: early (a chunk is the detection-latency granularity of nothing —
#: verdict ticks are exact — only of wasted lookahead work).
DEFAULT_CHUNK_TICKS = 256


class StreamReport:
    """Summary of an online checking run.

    ``detections`` / ``violations`` hold at most the first
    ``max_recorded`` entries (a violation is the obligation-opening
    tick paired with the tick it failed at); ``n_detections`` /
    ``n_violations`` are exact totals.
    """

    __slots__ = ("name", "ticks", "detections", "n_detections",
                 "violations", "n_violations", "n_passes", "n_pending",
                 "stopped_early")

    def __init__(self, name: str, ticks: int, detections: List[int],
                 n_detections: int,
                 violations: List[Tuple[int, int]], n_violations: int,
                 n_passes: int, n_pending: int, stopped_early: bool):
        self.name = name
        self.ticks = ticks
        self.detections = detections
        self.n_detections = n_detections
        self.violations = violations
        self.n_violations = n_violations
        self.n_passes = n_passes
        self.n_pending = n_pending
        self.stopped_early = stopped_early

    @property
    def accepted(self) -> bool:
        """Did the (antecedent) scenario occur at least once?"""
        return self.n_detections > 0

    @property
    def ok(self) -> bool:
        """No violation observed (pending obligations don't count)."""
        return self.n_violations == 0

    def __repr__(self):
        return (
            f"StreamReport({self.name!r}, ticks={self.ticks}, "
            f"detections={self.n_detections}, "
            f"violations={self.n_violations}, "
            f"stopped_early={self.stopped_early})"
        )


class StreamingChecker:
    """Feed valuations into monitors incrementally, with bounded memory."""

    def __init__(
        self,
        spec,
        engine: str = AUTO,
        stop_on_violation: bool = True,
        stop_on_detection: bool = False,
        max_recorded: int = 10_000,
        loop_limit: int = 3,
        chunk_ticks: int = DEFAULT_CHUNK_TICKS,
    ):
        # An explicit engine validates up front; "auto" stays
        # unresolved until the spec's shape is known (implications
        # interleave obligations per tick, so they plan differently).
        self._backend = (require_backend(engine, "streaming")
                         if engine != AUTO else None)
        if max_recorded < 0:
            raise MonitorError("max_recorded must be >= 0")
        if chunk_ticks <= 0:
            raise MonitorError("chunk_ticks must be positive")
        self._stop_on_violation = stop_on_violation
        self._stop_on_detection = stop_on_detection
        self._max_recorded = max_recorded
        self._chunk_ticks = chunk_ticks
        self._tick = 0
        self._stopped = False
        self._detections: List[int] = []
        self._n_detections = 0
        self._violations: List[Tuple[int, int]] = []
        self._n_violations = 0
        self._n_passes = 0
        self._consequents = None
        self._live: List[Obligation] = []
        self.name, monitors = self._resolve_spec(spec, loop_limit)
        if self._backend is None:
            # A detector spec with engine="auto": chunked vector
            # streaming when NumPy is live, scalar compiled otherwise.
            self._backend = engine_backend(plan_streaming(AUTO))
        if self._consequents is not None and stop_on_detection:
            # An implication opens an obligation at each (antecedent)
            # detection; stopping there would never check anything.
            raise MonitorError(
                "stop_on_detection applies to detector specs; an "
                "implication stops early via stop_on_violation"
            )
        self._engines = [
            self._backend.make_engine(monitor, record_history=False)
            for monitor in monitors
        ]
        # Multi-member specs (banks, implication antecedents) usually
        # synthesize every member over the *same* alphabet; stepping
        # them per tick used to re-encode the valuation once per
        # member.  Group engines by codec symbol ordering so push()
        # encodes once per distinct alphabet — the interpreted backend
        # steps on guard trees and has no mask to share.
        self._push_groups = None
        if self._backend.wants_compiled and len(self._engines) > 1:
            groups: dict = {}
            for engine in self._engines:
                codec = engine.monitor.codec
                group = groups.get(codec.symbols)
                if group is None:
                    groups[codec.symbols] = (codec.encode, [engine])
                else:
                    group[1].append(engine)
            self._push_groups = list(groups.values())

    # -- construction ----------------------------------------------------
    def _resolve_spec(self, spec, loop_limit: int):
        from repro.cesc.charts import Chart, Implication, as_chart
        from repro.runtime.compiled import CompiledMonitor
        from repro.synthesis.compose import MonitorBank

        explicit = self._backend
        # "auto" never resolves to the interpreted walker, so an
        # unresolved backend steps compiled tables.
        wants_compiled = (explicit.wants_compiled
                          if explicit is not None else True)
        if isinstance(spec, CompiledMonitor):
            if not wants_compiled:
                # Interpreted stepping needs guard trees; recover them
                # from the lowering source when the monitor kept one.
                if spec.source is None:
                    raise MonitorError(
                        f"compiled monitor {spec.name!r} has no interpreted "
                        f"source; use engine='compiled' or pass the Monitor"
                    )
                return spec.name, [spec.source]
            return spec.name, [spec]
        if isinstance(spec, Monitor):
            return spec.name, [spec]
        if isinstance(spec, MonitorBank):
            if wants_compiled:
                return spec.name, list(spec.compiled_members())
            return spec.name, list(spec.monitors)
        chart = as_chart(spec) if not isinstance(spec, Chart) else spec
        if isinstance(chart, Implication):
            if explicit is not None and not explicit.step:
                # Obligations interleave with detections tick by tick —
                # chunked lookahead would have to re-derive them anyway.
                raise MonitorError(
                    f"the {explicit.name} engine streams detector specs; "
                    "implications run with engine='compiled'"
                )
            if explicit is None:
                self._backend = explicit = engine_backend(
                    plan_streaming(AUTO, implication=True)
                )
                wants_compiled = explicit.wants_compiled
            checker = AssertionChecker(
                chart, loop_limit=loop_limit, engine=explicit.name
            )
            self._consequents = checker.consequent_patterns
            bank = checker.antecedent_bank
            if wants_compiled:
                return chart.name, list(bank.compiled_members())
            return chart.name, list(bank.monitors)
        from repro.synthesis.compose import synthesize_chart

        bank = synthesize_chart(chart, loop_limit=loop_limit)
        if wants_compiled:
            return bank.name, list(bank.compiled_members())
        return bank.name, list(bank.monitors)

    # -- observers -------------------------------------------------------
    @property
    def engine(self) -> str:
        """The resolved stepping backend's registered name."""
        return self._backend.name

    @property
    def chunked(self) -> bool:
        """Does this checker's backend consume chunked mask pushes?"""
        return self._backend.chunked

    @property
    def ticks(self) -> int:
        return self._tick

    @property
    def n_detections(self) -> int:
        """Exact detection count so far (uncapped)."""
        return self._n_detections

    @property
    def n_violations(self) -> int:
        """Exact violation count so far (uncapped)."""
        return self._n_violations

    @property
    def stopped(self) -> bool:
        """Has an early-exit condition fired?  (push becomes a no-op)"""
        return self._stopped

    @property
    def live_obligations(self) -> int:
        return len(self._live)

    # -- execution -------------------------------------------------------
    def push(self, valuation: Valuation) -> bool:
        """Consume one tick; returns False once checking has stopped."""
        if self._stopped:
            return False
        tick = self._tick
        # Advance live obligations first: an obligation opened at
        # detection tick t starts matching at tick t+1.  Every live
        # obligation is advanced — even when one of them fails and
        # checking is about to stop — so that PASS/PENDING counts for
        # this tick match what the batch checker would report.
        if self._consequents is not None and self._live:
            survivors: List[Obligation] = []
            violated = False
            for obligation in self._live:
                advance_obligation(
                    obligation, self._consequents, valuation, tick
                )
                if obligation.verdict is Verdict.PENDING:
                    survivors.append(obligation)
                elif obligation.verdict is Verdict.PASS:
                    self._n_passes += 1
                else:
                    violated = True
                    self._n_violations += 1
                    if len(self._violations) < self._max_recorded:
                        self._violations.append(
                            (obligation.start_tick, tick)
                        )
            self._live = survivors
            if violated and self._stop_on_violation:
                self._stopped = True
                self._tick += 1
                return False

        detected = False
        if self._push_groups is not None:
            for encode, engines in self._push_groups:
                mask = encode(valuation)
                for engine in engines:
                    engine.step_mask(mask)
                    if engine.drain_detections():
                        detected = True
        else:
            for engine in self._engines:
                engine.step(valuation)
                if engine.drain_detections():
                    detected = True
        if detected:
            self._n_detections += 1
            if len(self._detections) < self._max_recorded:
                self._detections.append(tick)
            if self._consequents is not None:
                self._live.append(Obligation(tick, len(self._consequents)))
            elif self._stop_on_detection:
                self._stopped = True
        self._tick += 1
        return not self._stopped

    def push_chunk(self, valuations: List[Valuation]) -> bool:
        """Consume a batch of ticks through the vector fast path.

        Verdict-equivalent to ``push`` per element — detections land on
        exact ticks, ``stop_on_detection`` truncates the tick count at
        the first detecting tick — but each engine consumes the whole
        chunk in one :meth:`~repro.runtime.vector.VectorEngine.feed_masks`
        call: the chunk is encoded once per member alphabet and stepped
        over the flat table without per-tick method dispatch.  Returns
        ``False`` once checking has stopped.

        Caveat (multi-member error ordering): each member consumes the
        chunk in turn, so when *several* members would raise inside the
        same chunk, the earliest-listed member's error surfaces rather
        than the earliest-*tick* one, and members fed before the raise
        have stepped up to their own failing tick.  Verdict reports are
        unaffected — an error aborts the run in every mode — and
        single-member specs (the common case) behave identically to
        per-tick pushing.
        """
        if not self._backend.chunked:
            raise MonitorError(
                "push_chunk is the vector fast path; construct the "
                "checker with engine='vector' (push() streams per tick)"
            )
        if self._stopped:
            return False
        if not valuations:
            return True
        if self._stop_on_detection:
            # Stopping at the first detection means ticks past it are
            # never stepped — chunked lookahead would step them anyway
            # and could surface errors (incomplete monitors, strict
            # scoreboards) the per-tick checker never reaches.  Process
            # per element; the chunk only batched the iteration.
            for valuation in valuations:
                if not self.push(valuation):
                    return False
            return True
        base = self._tick
        detected: set = set()
        encoded: dict = {}
        for engine in self._engines:
            codec = engine.monitor.codec
            masks = encoded.get(codec.symbols)
            if masks is None:
                encode = codec.encode
                masks = [encode(v) for v in valuations]
                encoded[codec.symbols] = masks
            detected.update(engine.feed_masks(masks))
        for offset in sorted(detected):
            self._n_detections += 1
            if len(self._detections) < self._max_recorded:
                self._detections.append(base + offset)
        self._tick = base + len(valuations)
        return True

    def _require_shared_codec(self):
        """The codec every engine shares (pre-encoded input contract)."""
        symbols = None
        for engine in self._engines:
            these = engine.monitor.codec.symbols
            if symbols is None:
                symbols = these
            elif these != symbols:
                raise MonitorError(
                    "pre-encoded masks need every member over one shared "
                    f"alphabet (got {list(symbols)} and {list(these)})"
                )
        return symbols

    def push_masks(self, masks: List[int]) -> bool:
        """Consume a batch of pre-encoded ticks (table backends).

        The zero-encode twin of :meth:`push_chunk` for input that is
        *already* in mask form — a columnar trace set's arrays, a
        cached corpus entry — verdict-equivalent tick for tick.  A
        chunked backend eats the whole batch per
        :meth:`~repro.runtime.vector.VectorEngine.feed_masks` call;
        other table-stepping backends loop ``step_mask`` (identical
        verdict ticks).  All members must share one alphabet (the
        masks are in a single codec's bit layout).  Returns ``False``
        once checking stopped.
        """
        if not self._backend.wants_compiled:
            raise MonitorError(
                "push_masks steps pre-encoded tables; construct the "
                "checker with engine='vector' or engine='compiled'"
            )
        if self._consequents is not None:
            raise MonitorError(
                "pre-encoded streaming checks detector specs; an "
                "implication interleaves obligations per valuation"
            )
        self._require_shared_codec()
        if self._stopped:
            return False
        if not len(masks):
            return True
        if self._stop_on_detection or not self._backend.chunked:
            for mask in masks:
                if self._stopped:
                    return False
                tick = self._tick
                detected = False
                for engine in self._engines:
                    engine.step_mask(mask)
                    if engine.drain_detections():
                        detected = True
                if detected:
                    self._n_detections += 1
                    if len(self._detections) < self._max_recorded:
                        self._detections.append(tick)
                    if self._stop_on_detection:
                        self._stopped = True
                self._tick += 1
            return not self._stopped
        base = self._tick
        detected_at: set = set()
        for engine in self._engines:
            detected_at.update(engine.feed_masks(masks))
        for offset in sorted(detected_at):
            self._n_detections += 1
            if len(self._detections) < self._max_recorded:
                self._detections.append(base + offset)
        self._tick = base + len(masks)
        return True

    def feed_masks(self, masks) -> "StreamReport":
        """Consume a whole pre-encoded mask stream; return the report.

        ``masks`` is any int sequence — typically one trace of a
        :class:`~repro.trace.columnar.ColumnarTraceSet`, fed in
        ``chunk_ticks`` slices so detection early-exit stays early.
        """
        total = len(masks)
        cursor = 0
        while cursor < total and not self._stopped:
            chunk = masks[cursor:cursor + self._chunk_ticks]
            if not self.push_masks(
                chunk if isinstance(chunk, list) else list(chunk)
            ):
                break
            cursor += self._chunk_ticks
        return self.report()

    def feed(self, valuations: Iterable[Valuation]) -> "StreamReport":
        """Consume an entire stream (or until early exit); return report.

        The input may be any iterable — a :class:`~repro.semantics.run.Trace`,
        a generator over a live simulation, or
        :meth:`VcdReader.valuations
        <repro.trace.vcd_reader.VcdReader.valuations>` — and is read
        strictly one element at a time (``chunk_ticks`` elements at a
        time for the vector backend, which batches the engine work
        without changing any verdict tick).  A ``stop_on_detection``
        check always reads and steps strictly per tick, whatever the
        backend: buffering a chunk would pull (and step) live-source
        ticks past the stopping detection.
        """
        if self._backend.chunked and not self._stop_on_detection:
            iterator = iter(valuations)
            while not self._stopped:
                chunk = list(islice(iterator, self._chunk_ticks))
                if not chunk:
                    break
                if not self.push_chunk(chunk):
                    break
            return self.report()
        for valuation in valuations:
            if not self.push(valuation):
                break
        return self.report()

    def report(self) -> StreamReport:
        return StreamReport(
            self.name,
            ticks=self._tick,
            detections=list(self._detections),
            n_detections=self._n_detections,
            violations=list(self._violations),
            n_violations=self._n_violations,
            n_passes=self._n_passes,
            n_pending=len(self._live),
            stopped_early=self._stopped,
        )
