"""Streaming trace pipeline: external waveforms in, verdicts out.

The synthesis layer turns visual specs into monitors; this package
turns *real simulation dumps* into the valuation streams those
monitors consume, and scales checking beyond a single process:

* :mod:`repro.trace.vcd_reader` — :class:`VcdReader`, a chunked,
  incremental VCD parser (the counterpart of
  :class:`~repro.sim.vcd.VcdWriter`) with a configurable
  signal-to-symbol :class:`SignalBinding`;
* :mod:`repro.trace.bridge` — :func:`trace_to_vcd`, rendering recorded
  traces as VCD dumps (fixtures, golden files, viewer hand-off);
* :mod:`repro.trace.streaming` — :class:`StreamingChecker`, online
  checking with bounded memory and early exit;
* :mod:`repro.trace.shard` — :func:`run_sharded` /
  :func:`run_bank_sharded`, multiprocessing fan-out of compiled-table
  checking across worker processes.
"""

from repro.trace.bridge import trace_to_vcd
from repro.trace.shard import run_bank_sharded, run_sharded, run_sharded_vcd
from repro.trace.streaming import StreamingChecker, StreamReport
from repro.trace.vcd_reader import SignalBinding, VcdReader, VcdSignal

__all__ = [
    "SignalBinding",
    "StreamReport",
    "StreamingChecker",
    "VcdReader",
    "VcdSignal",
    "run_bank_sharded",
    "run_sharded",
    "run_sharded_vcd",
    "trace_to_vcd",
]
