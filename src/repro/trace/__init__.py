"""Streaming trace pipeline: external waveforms in, verdicts out.

The synthesis layer turns visual specs into monitors; this package
turns *real simulation dumps* into the valuation streams those
monitors consume, and scales checking beyond a single process:

* :mod:`repro.trace.vcd_reader` — :class:`VcdReader`, a chunked,
  incremental VCD parser (the counterpart of
  :class:`~repro.sim.vcd.VcdWriter`) with a configurable
  signal-to-symbol :class:`SignalBinding`;
* :mod:`repro.trace.bridge` — :func:`trace_to_vcd`, rendering recorded
  traces as VCD dumps (fixtures, golden files, viewer hand-off);
* :mod:`repro.trace.columnar` — :class:`ColumnarTraceSet`, the binary
  ``.rtrc`` columnar store of pre-encoded mask arrays, with the
  chunk-parallel VCD converter (:func:`masks_from_vcd`) and the
  content-addressed corpus ingest (:func:`ingest_vcd`);
* :mod:`repro.trace.streaming` — :class:`StreamingChecker`, online
  checking with bounded memory and early exit;
* :mod:`repro.trace.shard` — :func:`run_sharded` /
  :func:`run_bank_sharded`, multiprocessing fan-out of compiled-table
  checking across worker processes.
"""

from repro.trace.bridge import trace_to_vcd
from repro.trace.columnar import (
    ColumnarTraceSet,
    codec_fingerprint,
    ingest_vcd,
    masks_from_vcd,
    masks_from_vcd_text,
)
from repro.trace.shard import (
    available_cores,
    run_bank_sharded,
    run_sharded,
    run_sharded_vcd,
    shutdown_worker_pools,
)
from repro.trace.streaming import StreamingChecker, StreamReport
from repro.trace.vcd_reader import SignalBinding, VcdReader, VcdSignal

__all__ = [
    "ColumnarTraceSet",
    "SignalBinding",
    "StreamReport",
    "StreamingChecker",
    "VcdReader",
    "VcdSignal",
    "available_cores",
    "codec_fingerprint",
    "ingest_vcd",
    "masks_from_vcd",
    "masks_from_vcd_text",
    "run_bank_sharded",
    "run_sharded",
    "run_sharded_vcd",
    "shutdown_worker_pools",
    "trace_to_vcd",
]
