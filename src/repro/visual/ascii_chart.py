"""ASCII rendering of SCESC charts.

Instances are vertical lines, clock grid lines are horizontal rules,
events appear on their grid line with source/target arrows where
declared, guards in ``guard : event`` notation and causality arrows in
a trailing legend — a terminal approximation of Figure 1's graphics.
"""

from __future__ import annotations

from typing import Dict, List

from repro.cesc.ast import ENV, SCESC, EventOccurrence

__all__ = ["render_scesc"]

_COLUMN_WIDTH = 18


def _occurrence_text(occurrence: EventOccurrence) -> str:
    text = occurrence.event
    if occurrence.negated:
        text = "!" + text
    if occurrence.guard is not None:
        text = f"{occurrence.guard!r}:{text}"
    return text


def _arrow_cell(occurrence: EventOccurrence, columns: List[str]) -> str:
    source = occurrence.source
    target = occurrence.target
    if source in columns and target in columns:
        if columns.index(source) < columns.index(target):
            return f"{_occurrence_text(occurrence)} ->"
        return f"<- {_occurrence_text(occurrence)}"
    if target == ENV:
        return f"{_occurrence_text(occurrence)} ->|"
    if source == ENV:
        return f"|-> {_occurrence_text(occurrence)}"
    return _occurrence_text(occurrence)


def render_scesc(chart: SCESC) -> str:
    """Render the chart as fixed-width ASCII art."""
    columns = [i.name for i in chart.instances] or ["(chart)"]
    width = max(_COLUMN_WIDTH, max(len(c) for c in columns) + 4)

    def row(cells: List[str]) -> str:
        return "".join(cell.center(width) for cell in cells)

    lines: List[str] = []
    lines.append(f"SCESC {chart.name}  (clock {chart.clock.name}, "
                 f"period {chart.clock.period})")
    lines.append(row(columns))
    lines.append(row(["|"] * len(columns)))
    for index, tick in enumerate(chart.ticks):
        label = f"t{index}"
        rule = ("-" * (width * len(columns) - len(label) - 1)) + " " + label
        lines.append(rule)
        if not tick.occurrences:
            lines.append(row(["|"] * len(columns)))
            continue
        for occurrence in tick.occurrences:
            cells = ["|"] * len(columns)
            anchor = occurrence.source or occurrence.target
            if anchor in columns:
                cells[columns.index(anchor)] = _arrow_cell(occurrence, columns)
            else:
                cells[0] = _occurrence_text(occurrence)
            lines.append(row(cells))
    if chart.arrows:
        lines.append("")
        lines.append("causality:")
        for arrow in chart.arrows:
            lines.append(
                f"  {arrow.name}: {arrow.cause.event}@t{arrow.cause.tick_index}"
                f" ~~> {arrow.effect.event}@t{arrow.effect.tick_index}"
            )
    return "\n".join(lines) + "\n"
