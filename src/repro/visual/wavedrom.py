"""WaveDrom bridge: timing-diagram JSON <-> traces and charts.

WaveDrom is today's de-facto textual timing-diagram format (the modern
counterpart of the figures in the OCP/AMBA standards the paper works
from).  Two directions:

* :func:`trace_to_wavedrom` — dump a recorded trace as a WaveDrom
  document for visual inspection;
* :func:`wavedrom_to_scesc` — read a (pulse-style) WaveDrom diagram as
  an SCESC: each cycle where at least one signal is high becomes a
  grid line requiring those events, which is exactly how the paper
  reads the standards' waveforms into charts.

Only the bi-level subset is interpreted (``1``/``h`` high, ``0``/``l``
low, ``.`` repeat last); multi-bit lanes and node annotations are out
of scope and rejected explicitly.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Union

from repro.cesc.ast import SCESC
from repro.cesc.builder import ev, scesc
from repro.errors import ChartError
from repro.semantics.run import Trace

__all__ = ["trace_to_wavedrom", "wavedrom_to_scesc"]

_HIGH = {"1", "h", "H"}
_LOW = {"0", "l", "L"}


def trace_to_wavedrom(trace: Trace, name: str = "trace") -> str:
    """Serialise a trace as WaveDrom JSON text."""
    signal = []
    for symbol in sorted(trace.alphabet):
        wave_chars: List[str] = []
        previous: Optional[bool] = None
        for valuation in trace:
            value = valuation.is_true(symbol)
            if value == previous:
                wave_chars.append(".")
            else:
                wave_chars.append("1" if value else "0")
            previous = value
        signal.append({"name": symbol, "wave": "".join(wave_chars)})
    document = {"signal": signal, "config": {"hscale": 1}, "head": {
        "text": name}}
    return json.dumps(document, indent=2)


def _expand_wave(wave: str, name: str) -> List[bool]:
    levels: List[bool] = []
    current = False
    for char in wave:
        if char in _HIGH:
            current = True
        elif char in _LOW:
            current = False
        elif char == ".":
            pass  # repeat last level
        else:
            raise ChartError(
                f"signal {name!r}: unsupported WaveDrom wave char {char!r} "
                "(only bi-level 0/1/h/l/. is interpreted)"
            )
        levels.append(current)
    return levels


def wavedrom_to_trace(document: Union[str, dict]) -> Trace:
    """Decode a bi-level WaveDrom document into a trace."""
    if isinstance(document, str):
        document = json.loads(document)
    signals = document.get("signal")
    if not isinstance(signals, list) or not signals:
        raise ChartError("WaveDrom document has no 'signal' array")
    lanes: Dict[str, List[bool]] = {}
    length = 0
    for lane in signals:
        if not isinstance(lane, dict) or "name" not in lane:
            raise ChartError("unsupported WaveDrom lane (grouping not handled)")
        name = lane["name"]
        levels = _expand_wave(lane.get("wave", ""), name)
        lanes[name] = levels
        length = max(length, len(levels))
    sets = []
    for index in range(length):
        sets.append({
            name for name, levels in lanes.items()
            if index < len(levels) and levels[index]
        })
    return Trace.from_sets(sets, alphabet=lanes.keys())


def wavedrom_to_scesc(document: Union[str, dict], name: str = "wavedrom",
                      instance: str = "DUT") -> SCESC:
    """Read a WaveDrom diagram as an SCESC specification.

    Each cycle with at least one high signal becomes a grid line whose
    events are the high signals of that cycle; leading/trailing idle
    cycles are dropped, interior idle cycles become unconstrained grid
    lines (the scenario tolerates any activity there).
    """
    trace = wavedrom_to_trace(document)
    active = [bool(valuation.true) for valuation in trace]
    if not any(active):
        raise ChartError("WaveDrom diagram contains no events")
    first = active.index(True)
    last = len(active) - 1 - active[::-1].index(True)
    builder = scesc(name).instances(instance)
    for index in range(first, last + 1):
        events = sorted(trace[index].true)
        if events:
            builder.tick(*[ev(e) for e in events])
        else:
            builder.empty_tick()
    return builder.build()
