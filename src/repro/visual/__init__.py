"""Visual front ends: rendering charts and traces, WaveDrom bridge.

CESC is a *visual* language; these modules provide the drawing layer:

* :mod:`repro.visual.ascii_chart` — terminal rendering of SCESCs
  (instances as vertical lines, grid lines, message arrows, guards);
* :mod:`repro.visual.timing` — traces as ASCII waveforms;
* :mod:`repro.visual.wavedrom` — import/export of WaveDrom timing
  diagram JSON, the de-facto interchange format for timing diagrams
  (and the closest modern analogue of the paper's figures).
"""

from repro.visual.ascii_chart import render_scesc
from repro.visual.timing import render_trace
from repro.visual.wavedrom import trace_to_wavedrom, wavedrom_to_scesc

__all__ = [
    "render_scesc",
    "render_trace",
    "trace_to_wavedrom",
    "wavedrom_to_scesc",
]
