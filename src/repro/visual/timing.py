"""ASCII waveform rendering of traces (one lane per symbol)."""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.semantics.run import Trace

__all__ = ["render_trace"]


def render_trace(trace: Trace, symbols: Optional[Iterable[str]] = None,
                 high: str = "#", low: str = ".") -> str:
    """Render a trace as per-symbol lanes.

    >>> from repro.semantics.run import Trace
    >>> print(render_trace(Trace.from_sets([{"a"}, set(), {"a"}],
    ...                                    alphabet={"a"})), end="")
    tick 012
    a    #.#
    """
    chosen = sorted(symbols) if symbols is not None else sorted(trace.alphabet)
    label_width = max([len(s) for s in chosen] + [4])
    lines: List[str] = []
    header = "tick".ljust(label_width) + " " + "".join(
        str(i % 10) for i in range(trace.length)
    )
    lines.append(header)
    for symbol in chosen:
        lane = "".join(
            high if valuation.is_true(symbol) else low for valuation in trace
        )
        lines.append(symbol.ljust(label_width) + " " + lane)
    return "\n".join(lines) + "\n"
