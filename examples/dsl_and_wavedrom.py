#!/usr/bin/env python3
"""Spec front ends: the textual CESC DSL and WaveDrom timing diagrams.

Parses a multi-clock specification written in the DSL, lints it with
the consistency analyzer, synthesizes monitors, and round-trips a
WaveDrom timing diagram into a chart and back.

Run:  python examples/dsl_and_wavedrom.py
"""

from repro import Trace, parse_cesc, run_monitor, tr
from repro.analysis.consistency import check_consistency
from repro.cesc.charts import ScescChart
from repro.visual.wavedrom import trace_to_wavedrom, wavedrom_to_scesc

SPEC = """
// A small SoC interconnect spec in the CESC DSL.
clock bus_clk period 2;
clock periph_clk period 3;

chart grant_cycle on bus_clk {
  instances Arbiter, Master;
  props high_priority;
  tick: Master -> Arbiter : bus_req;
  tick: Arbiter -> Master : bus_gnt when high_priority;
  arrow granted: bus_req -> bus_gnt;
}

chart periph_write on periph_clk {
  instances Master, Periph;
  tick: Master -> Periph : pwrite, paddr;
  tick: Periph -> Master : pready;
}

compose soc = async(grant_cycle, periph_write) {
  arrow handoff: bus_gnt@1 in grant_cycle -> pwrite@0 in periph_write;
}
"""


def main() -> None:
    spec = parse_cesc(SPEC)
    print(f"parsed charts: {spec.names()}")
    grant = spec.charts["grant_cycle"]
    findings = check_consistency(ScescChart(grant))
    print(f"consistency findings for grant_cycle: "
          f"{[str(f) for f in findings] or 'clean'}")

    monitor = tr(grant)
    trace = Trace.from_sets(
        [{"bus_req"}, {"bus_gnt", "high_priority"}],
        alphabet=sorted(grant.alphabet()),
    )
    print(f"grant_cycle monitor detections: "
          f"{run_monitor(monitor, trace).detections}\n")

    composite = spec.composites["soc"]
    print(f"composite {composite.name!r}: "
          f"{len(composite.cross_arrows)} cross-domain arrow(s), "
          f"clocks {[c.name for c in sorted(composite.clocks(), key=lambda c: c.name)]}\n")

    # WaveDrom round trip: diagram -> chart -> monitor -> detection,
    # then trace -> diagram for visual inspection.
    diagram = {
        "signal": [
            {"name": "req", "wave": "010....."},
            {"name": "gnt", "wave": "0.10...."},
            {"name": "data", "wave": "0..10..."},
        ]
    }
    chart = wavedrom_to_scesc(diagram, name="from_wavedrom")
    print(f"chart from WaveDrom: {chart.n_ticks} grid lines, "
          f"events {sorted(chart.event_names())}")
    monitor = tr(chart)
    stimulus = Trace.from_sets(
        [set(), {"req"}, {"gnt"}, {"data"}, set()],
        alphabet={"req", "gnt", "data"},
    )
    print(f"detections: {run_monitor(monitor, stimulus).detections}")
    print("\nexported WaveDrom of the stimulus:")
    print(trace_to_wavedrom(stimulus, name="stimulus"))


if __name__ == "__main__":
    main()
