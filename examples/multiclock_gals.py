#!/usr/bin/env python3
"""Multi-clock (GALS) monitoring: the paper's Figure 2 scenario.

The read protocol splits across two clock domains (clk1 period 10,
clk2 period 7).  Synthesis produces one local monitor per domain; they
synchronize through the shared scoreboard, implementing the
cross-domain causality arrows e4/e5.  The example builds a global run,
executes the network, and shows the scoreboard enforcing cause-before-
effect across domains.

Run:  python examples/multiclock_gals.py
"""

from repro import GlobalRun, Scoreboard, Trace, synthesize_network
from repro.monitor.dot import network_to_dot
from repro.protocols.readproto import multiclock_read_chart


def main() -> None:
    chart = multiclock_read_chart()
    print(f"asynchronous composition: {chart.name}")
    for child in chart.children:
        clock = next(iter(child.clocks()))
        print(f"  component {child.name} on {clock.name} "
              f"(period {clock.period})")
    for arrow in chart.cross_arrows:
        print(f"  cross arrow {arrow.name}: {arrow.cause!r}@"
              f"{arrow.source_chart} -> {arrow.effect!r}@{arrow.target_chart}")
    print()

    network = synthesize_network(chart)
    print(f"network: {len(network.locals)} local monitors, "
          f"{network.total_states()} states total")
    print("DOT rendering available via network_to_dot(network)\n")

    clk1 = network.local_for("M1").clock
    clk2 = network.local_for("M2").clock

    # Domain traces: M1 requests at its tick 0 (t=0); the forwarded
    # request reaches M2 at clk2 tick 2 (t=14 > t=10, respecting e4);
    # M2's data lands at clk2 tick 4 (t=28); M1 delivers at clk1 tick 3
    # (t=30 > t=28, respecting e5).
    t1 = Trace.from_sets(
        [
            {"req1", "rd1", "addr1"},      # t=0
            {"req2", "rd2", "addr2"},      # t=10
            {"rdy1"},                      # t=20
            {"data1"},                     # t=30
            set(),                         # t=40
        ],
        alphabet={"req1", "rd1", "addr1", "req2", "rd2", "addr2",
                  "rdy1", "data1"},
    )
    t2 = Trace.from_sets(
        [
            set(),                             # t=0
            set(),                             # t=7
            {"req3", "rd3", "addr3"},          # t=14
            {"rdy3"},                          # t=21
            {"data3"},                         # t=28
            set(),                             # t=35
        ],
        alphabet={"req3", "rd3", "addr3", "rdy3", "data3"},
    )
    run = GlobalRun.merge({clk1: t1, clk2: t2})
    print(f"global run: {run.length} instants "
          f"(union of clk1 and clk2 ticks)")

    scoreboard = Scoreboard()
    result = network.run(run, scoreboard=scoreboard)
    print(f"network accepted: {result.accepted} "
          f"(completed at t={result.completed_at})")
    for component, times in result.detections.items():
        print(f"  {component} detected at t={[str(t) for t in times]}")

    # Now violate e4: the slave-side request fires before the master's.
    t2_early = Trace.from_sets(
        [{"req3", "rd3", "addr3"}, {"rdy3"}, {"data3"}, set(), set(), set()],
        alphabet={"req3", "rd3", "addr3", "rdy3", "data3"},
    )
    result = network.run(GlobalRun.merge({clk1: t1, clk2: t2_early}))
    print(f"\ncause-before-effect violated: accepted={result.accepted} "
          f"(M2 detections: {result.detections['M2']})")


if __name__ == "__main__":
    main()
