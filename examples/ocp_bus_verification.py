#!/usr/bin/env python3
"""OCP bus verification: the Figure 4 flow on the Figure 6/7 scenarios.

Spins up the clocked simulation substrate with a behavioural OCP
master/slave pair, attaches monitors synthesized from the simple-read
and pipelined-burst charts, runs healthy and faulty silicon, and shows
the assertion checker flagging the broken slave.

Run:  python examples/ocp_bus_verification.py
"""

from repro import AssertionChecker, Clock, Implication, ev, scesc, tr
from repro.analysis.coverage import CoverageCollector
from repro.protocols.ocp import (
    OcpMaster,
    OcpSignals,
    OcpSlave,
    ocp_burst_read_chart,
    ocp_simple_read_chart,
)
from repro.sim.testbench import Testbench
from repro.visual.timing import render_trace


def simulate(fault=None, cycles=16):
    """One testbench run; returns (trace, read detections, burst detections)."""
    bench = Testbench()
    clk = bench.sim.add_clock(Clock("ocp_clk", period=1))
    signals = OcpSignals(bench.sim, clk)
    master = OcpMaster(signals, schedule=[("read", 1), ("burst", 5),
                                          ("read", 12)])
    slave = OcpSlave(signals, latency=2 if fault is None else 1, fault=fault)
    bench.sim.add_process(clk, master.process)
    slave.attach(bench.sim)

    recorder = bench.record(clk, signals.mapping())
    read_monitor = tr(ocp_simple_read_chart())
    burst_monitor = tr(ocp_burst_read_chart())
    read_engine = bench.attach_monitor(read_monitor, clk, signals.mapping())
    burst_engine = bench.attach_monitor(burst_monitor, clk, signals.mapping())
    coverage = CoverageCollector(read_monitor)
    bench.run(clk, cycles)
    coverage.record(read_engine)
    return (recorder.trace(), read_engine.detections,
            burst_engine.detections, coverage)


def main() -> None:
    print("=== healthy OCP slave (latency 2, pipelined burst) ===")
    trace, reads, bursts, coverage = simulate()
    print(render_trace(trace, symbols=["MCmd_rd", "Addr", "SCmd_accept",
                                       "SResp", "SData", "Burst4", "Burst1"]))
    print(f"simple-read detections (Fig.6 monitor):   {reads}")
    print(f"burst-of-4 detections (Fig.7 monitor):    {bursts}")
    print(f"read-monitor coverage: {coverage.report()}\n")

    print("=== faulty slave: responses silently dropped ===")
    trace, reads, bursts, _ = simulate(fault="drop_response")
    print(f"simple-read detections: {reads} (nothing completes)")

    # Checker mode: request implies response — violations, not silence.
    request = (
        scesc("ocp_request").instances("Master", "Slave")
        .tick(ev("MCmd_rd"), ev("Addr"), ev("SCmd_accept"))
        .build()
    )
    response = (
        scesc("ocp_response").instances("Master", "Slave")
        .tick(ev("SResp"), ev("SData"))
        .build()
    )
    checker = AssertionChecker(Implication(request, response))
    report = checker.check(trace)
    print(f"assertion checker: {len(report.violations)} violation(s), "
          f"{len(report.passes)} pass(es)")
    for violation in report.violations:
        print(f"  FAIL @tick {violation.decided_tick}: "
              f"{violation.failed_expectations[0]}")


if __name__ == "__main__":
    main()
