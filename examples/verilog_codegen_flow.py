#!/usr/bin/env python3
"""HDL code generation: chart -> monitor -> Verilog / SVA / PSL.

Emits the Figure 6 OCP monitor as a synthesizable Verilog FSM, runs it
in the built-in Verilog-subset simulator, and co-simulates against the
Python engine on the same stimulus; also prints the SVA and PSL views
of the same specification.

Run:  python examples/verilog_codegen_flow.py
"""

from repro import ScescChart, Trace, run_monitor, symbolic_monitor, tr
from repro.codegen.psl import chart_to_psl
from repro.codegen.python_gen import monitor_to_python
from repro.codegen.sva import chart_to_sva
from repro.codegen.verilog import monitor_to_verilog
from repro.hdl.sim import VerilogSim
from repro.protocols.ocp import ocp_simple_read_chart


def main() -> None:
    chart = ocp_simple_read_chart()
    monitor = symbolic_monitor(tr(chart))

    generated = monitor_to_verilog(monitor, module_name="ocp_read_monitor")
    print("=== generated Verilog (first 25 lines) ===")
    print("\n".join(generated.source.splitlines()[:25]))
    print("  ...\n")

    # Co-simulate: same stimulus into the Python engine and the RTL.
    trace = Trace.from_sets(
        [
            set(),
            {"MCmd_rd", "Addr", "SCmd_accept"},
            {"SResp", "SData"},
            {"MCmd_rd", "Addr", "SCmd_accept"},
            set(),                              # response dropped
            {"MCmd_rd", "Addr", "SCmd_accept"},
            {"SResp", "SData"},
        ],
        alphabet=sorted(chart.alphabet()),
    )
    python_result = run_monitor(monitor, trace)

    sim = VerilogSim(generated.source)
    sim.step({"rst_n": 0})
    rtl_detections = []
    for tick, valuation in enumerate(trace):
        vector = {"rst_n": 1}
        for symbol, port in generated.port_of_symbol.items():
            vector[port] = 1 if valuation.is_true(symbol) else 0
        if sim.step(vector)["detect"]:
            rtl_detections.append(tick)

    print(f"python engine detections: {python_result.detections}")
    print(f"verilog RTL detections:   {rtl_detections}")
    assert python_result.detections == rtl_detections
    print("co-simulation: EQUIVALENT\n")

    print("=== SVA view ===")
    print(chart_to_sva(ScescChart(chart)))
    print("=== PSL view ===")
    print(chart_to_psl(ScescChart(chart)))

    print("=== standalone Python checker (first 12 lines) ===")
    print("\n".join(monitor_to_python(monitor).splitlines()[:12]))


if __name__ == "__main__":
    main()
