#!/usr/bin/env python3
"""Quickstart: chart -> monitor -> trace, in thirty lines.

Builds the paper's Figure 1 read protocol as an SCESC, synthesizes the
assertion monitor with the ``Tr`` algorithm, renders both, and runs the
monitor over a satisfying and a violating trace.

Run:  python examples/quickstart.py
"""

from repro import Trace, run_monitor, symbolic_monitor, tr
from repro.monitor.dot import monitor_to_dot
from repro.protocols.readproto import read_protocol_chart
from repro.visual.ascii_chart import render_scesc
from repro.visual.timing import render_trace


def main() -> None:
    # 1. The visual specification (paper Figure 1).
    chart = read_protocol_chart()
    print(render_scesc(chart))

    # 2. Synthesize the monitor (paper Section 5) and compress its
    #    guards into the figure-style symbolic form.
    monitor = symbolic_monitor(tr(chart))
    print(f"monitor: {monitor.n_states} states, "
          f"{monitor.transition_count()} symbolic transitions")
    print("DOT available via monitor_to_dot(monitor) — first lines:")
    print("\n".join(monitor_to_dot(monitor).splitlines()[:4]), "\n")

    # 3. A trace realising the scenario...
    alphabet = sorted(chart.alphabet())
    good = Trace.from_sets(
        [
            set(),
            {"req1", "rd1", "addr1"},
            {"req2", "rd2", "addr2"},
            {"rdy1"},
            {"data1"},
            set(),
        ],
        alphabet=alphabet,
    )
    print(render_trace(good))
    result = run_monitor(monitor, good)
    print(f"satisfying trace: detections at ticks {result.detections}\n")

    # 4. ... and one where the data beat never arrives.
    bad = Trace.from_sets(
        [
            {"req1", "rd1", "addr1"},
            {"req2", "rd2", "addr2"},
            {"rdy1"},
            set(),
            set(),
        ],
        alphabet=alphabet,
    )
    result = run_monitor(monitor, bad)
    print(f"violating trace: detections = {result.detections} "
          f"(accepted={result.accepted})")


if __name__ == "__main__":
    main()
