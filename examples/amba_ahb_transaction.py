#!/usr/bin/env python3
"""AMBA AHB CLI transaction monitoring (the paper's Figure 8).

Synthesizes the monitor for the AHB CLI master/bus transaction chart,
prints its figure-style symbolic form, runs it against the behavioural
bus model, and compares with the hand-written baseline — including the
buggy manual variant that over-accepts a bus which never responds.

Run:  python examples/amba_ahb_transaction.py
"""

from repro import Clock, run_monitor, symbolic_monitor, tr
from repro.baselines.manual import ManualAhbMonitor, ManualAhbMonitorBuggy
from repro.protocols.amba import (
    AhbBus,
    AhbMaster,
    AhbSignals,
    ahb_transaction_chart,
)
from repro.sim.testbench import Testbench


def simulate(drop_bus_response=False):
    bench = Testbench()
    clk = bench.sim.add_clock(Clock("ahb_clk", period=1))
    signals = AhbSignals(bench.sim, clk)
    master = AhbMaster(signals, schedule=[1, 5])
    bus = AhbBus(signals)
    bench.sim.add_process(clk, master.process)
    if not drop_bus_response:
        bus.attach(bench.sim)
    else:
        # A bus that resolves the slave but never answers the data phase.
        def silent_bus(sim, cycle):
            if signals.init_transaction.value:
                signals.get_slave.pulse()
            if signals.master_set_data.value:
                signals.bus_set_data.pulse()  # data but no bus_response
        bench.sim.add_process(clk, silent_bus, level=1)
    recorder = bench.record(clk, signals.mapping())
    bench.run(clk, 10)
    return recorder.trace()


def main() -> None:
    chart = ahb_transaction_chart()
    monitor = symbolic_monitor(tr(chart))
    print(f"Figure 8 monitor: {monitor.n_states} states "
          f"(paper shows 0..3), final state {monitor.final}")
    print("edges with scoreboard actions:")
    for transition in monitor.transitions:
        if transition.actions:
            print(f"  {transition.source} -> {transition.target}: "
                  f"{transition.label()[:90]}")
    print()

    print("=== healthy bus ===")
    trace = simulate()
    result = run_monitor(monitor, trace)
    manual = ManualAhbMonitor().feed(trace)
    print(f"synthesized monitor detections: {result.detections}")
    print(f"manual monitor detections:      {manual.detections}\n")

    print("=== bus never raises bus_response ===")
    trace = simulate(drop_bus_response=True)
    result = run_monitor(monitor, trace)
    manual = ManualAhbMonitor().feed(trace)
    buggy = ManualAhbMonitorBuggy().feed(trace)
    print(f"synthesized monitor detections: {result.detections}")
    print(f"manual (correct) detections:    {manual.detections}")
    print(f"manual (buggy) detections:      {buggy.detections} "
          "<- the hand-written slip over-accepts")


if __name__ == "__main__":
    main()
