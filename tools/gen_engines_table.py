#!/usr/bin/env python
"""Regenerate README.md's engines table from the live registry.

The block between ``<!-- engines-table:begin -->`` and
``<!-- engines-table:end -->`` is generated output —
``tests/runtime/test_engine_matrix.py`` fails when it drifts from
:func:`repro.runtime.engines.engines_markdown_table`.  After
registering or editing a backend, run:

    PYTHONPATH=src python tools/gen_engines_table.py
"""

import os
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(ROOT, "src"))

BEGIN = "<!-- engines-table:begin -->\n"
END = "<!-- engines-table:end -->"


def main() -> int:
    from repro.runtime.engines import engines_markdown_table

    readme = os.path.join(ROOT, "README.md")
    with open(readme, encoding="utf-8") as stream:
        text = stream.read()
    if BEGIN not in text or END not in text:
        print("README.md is missing the engines-table markers",
              file=sys.stderr)
        return 1
    head, rest = text.split(BEGIN, 1)
    _, tail = rest.split(END, 1)
    updated = head + BEGIN + engines_markdown_table() + END + tail
    if updated == text:
        print("README engines table already current")
        return 0
    with open(readme, "w", encoding="utf-8") as stream:
        stream.write(updated)
    print("README engines table regenerated")
    return 0


if __name__ == "__main__":
    sys.exit(main())
