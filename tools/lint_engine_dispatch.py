#!/usr/bin/env python
"""Fail when raw engine-name dispatch appears outside the registry.

PR 9 moved every backend-selection decision into
``src/repro/runtime/engines.py``; this lint keeps it there.  It greps
the source tree for comparisons of an engine-ish name against a quoted
backend literal — the ``engine == "vector"`` / ``"compiled" != engine``
/ ``engine in ("compiled", ...)`` shapes that used to be scattered
across nine modules — and exits non-zero listing every offender.

Run directly (CI) or through ``tests/test_engine_lint.py`` (tier-1):

    python tools/lint_engine_dispatch.py

Keyword arguments (``engine="vector"``) and default values are fine —
names-as-data is the point of the registry; it is *branching* on the
name outside the registry that re-scatters dispatch.
"""

from __future__ import annotations

import os
import re
import sys

#: The one module allowed to branch on backend names.
ALLOWED = {os.path.join("repro", "runtime", "engines.py")}

#: Registered backend names plus the planner sentinel.
_NAMES = r"(?:auto|interpreted|compiled|vector)"
_QUOTED = rf"""["']{_NAMES}["']"""
#: Anything engine-ish on either side of the compare: bare ``engine``,
#: ``args.engine``, ``self._engine_backend``, ``checker.engine``...
_VAR = r"[\w.]*engine[\w.]*"

PATTERNS = [
    # engine == "vector" / engine != 'compiled'
    re.compile(rf"{_VAR}\s*[!=]=\s*{_QUOTED}"),
    # "vector" == engine
    re.compile(rf"{_QUOTED}\s*[!=]=\s*{_VAR}"),
    # engine in ("compiled", ...) / engine not in ["vector"]
    re.compile(rf"{_VAR}\s+(?:not\s+)?in\s+[(\[{{]\s*{_QUOTED}"),
]


def scan(root: str) -> list:
    offenders = []
    src = os.path.join(root, "src")
    for dirpath, _, filenames in os.walk(src):
        for filename in filenames:
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            relative = os.path.relpath(path, src)
            if relative in ALLOWED:
                continue
            with open(path, encoding="utf-8") as stream:
                for number, line in enumerate(stream, 1):
                    stripped = line.split("#", 1)[0]
                    if any(p.search(stripped) for p in PATTERNS):
                        offenders.append(
                            f"{os.path.relpath(path, root)}:{number}: "
                            f"{line.strip()}"
                        )
    return offenders


def main() -> int:
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    offenders = scan(root)
    if offenders:
        print("engine dispatch outside runtime/engines.py "
              "(route through the registry instead):")
        for offender in offenders:
            print(f"  {offender}")
        return 1
    print("engine-dispatch lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
